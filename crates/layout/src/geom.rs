//! Rectilinear geometry in integer nanometres.

use std::fmt;

/// An axis-aligned rectangle with integer-nanometre coordinates.
///
/// Invariant: `x0 <= x1` and `y0 <= y1` (enforced by [`Rect::new`]).
/// A rectangle is *closed*: two rectangles sharing only an edge are
/// considered touching (which, for same-layer conductors, means connected).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Left edge (nm).
    pub x0: i64,
    /// Bottom edge (nm).
    pub y0: i64,
    /// Right edge (nm).
    pub x1: i64,
    /// Top edge (nm).
    pub y1: i64,
}

impl Rect {
    /// Creates a rectangle, normalising the corner order.
    pub fn new(x0: i64, y0: i64, x1: i64, y1: i64) -> Self {
        Rect {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// A square of side `size` centred at `(cx, cy)` — the shape used for
    /// sprinkled spot defects.
    pub fn square(cx: i64, cy: i64, size: i64) -> Self {
        let h = size / 2;
        Rect::new(cx - h, cy - h, cx + size - h, cy + size - h)
    }

    /// Width in nm.
    pub fn width(&self) -> i64 {
        self.x1 - self.x0
    }

    /// Height in nm.
    pub fn height(&self) -> i64 {
        self.y1 - self.y0
    }

    /// Area in nm².
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// `true` if the rectangle has zero area.
    pub fn is_degenerate(&self) -> bool {
        self.width() == 0 || self.height() == 0
    }

    /// `true` if `self` and `other` share any point (edges included).
    pub fn touches(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// `true` if `self` and `other` share interior area (strict overlap).
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// The intersection rectangle, if the two touch.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.touches(other) {
            return None;
        }
        Some(Rect {
            x0: self.x0.max(other.x0),
            y0: self.y0.max(other.y0),
            x1: self.x1.min(other.x1),
            y1: self.y1.min(other.y1),
        })
    }

    /// `true` if `self` fully contains `other`.
    pub fn contains(&self, other: &Rect) -> bool {
        self.x0 <= other.x0 && self.y0 <= other.y0 && self.x1 >= other.x1 && self.y1 >= other.y1
    }

    /// `true` if the point is inside (edges included).
    pub fn contains_point(&self, x: i64, y: i64) -> bool {
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }

    /// The smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            x0: self.x0.min(other.x0),
            y0: self.y0.min(other.y0),
            x1: self.x1.max(other.x1),
            y1: self.y1.max(other.y1),
        }
    }

    /// Grows the rectangle by `margin` on every side.
    pub fn expanded(&self, margin: i64) -> Rect {
        Rect::new(
            self.x0 - margin,
            self.y0 - margin,
            self.x1 + margin,
            self.y1 + margin,
        )
    }

    /// Splits `self` by removing the vertical band `[cut.x0, cut.x1]`,
    /// returning the surviving left/right pieces. Used for missing-material
    /// defects that sever a wire. Pieces with zero width are dropped.
    pub fn cut_vertical_band(&self, cut: &Rect) -> Vec<Rect> {
        let mut out = Vec::new();
        if cut.x0 > self.x0 {
            out.push(Rect::new(self.x0, self.y0, cut.x0.min(self.x1), self.y1));
        }
        if cut.x1 < self.x1 {
            out.push(Rect::new(cut.x1.max(self.x0), self.y0, self.x1, self.y1));
        }
        out.retain(|r| !r.is_degenerate());
        out
    }

    /// Splits `self` by removing the horizontal band `[cut.y0, cut.y1]`.
    pub fn cut_horizontal_band(&self, cut: &Rect) -> Vec<Rect> {
        let mut out = Vec::new();
        if cut.y0 > self.y0 {
            out.push(Rect::new(self.x0, self.y0, self.x1, cut.y0.min(self.y1)));
        }
        if cut.y1 < self.y1 {
            out.push(Rect::new(self.x0, cut.y1.max(self.y0), self.x1, self.y1));
        }
        out.retain(|r| !r.is_degenerate());
        out
    }

    /// Applies the severing rule for a missing-material defect: returns
    /// `Some(pieces)` if the defect either removes the shape entirely
    /// (empty vec) or cuts it into disconnected pieces; `None` when the
    /// shape survives connected (defect misses it or only nibbles an edge).
    pub fn sever(&self, defect: &Rect) -> Option<Vec<Rect>> {
        if !self.overlaps(defect) {
            return None;
        }
        if defect.contains(self) {
            return Some(Vec::new());
        }
        let spans_y = defect.y0 <= self.y0 && defect.y1 >= self.y1;
        let spans_x = defect.x0 <= self.x0 && defect.x1 >= self.x1;
        if spans_y && defect.x0 > self.x0 && defect.x1 < self.x1 {
            return Some(self.cut_vertical_band(defect));
        }
        if spans_x && defect.y0 > self.y0 && defect.y1 < self.y1 {
            return Some(self.cut_horizontal_band(defect));
        }
        if spans_y || spans_x {
            // The defect spans the full cross-section but reaches past one
            // end of the shape: it shortens the shape instead of cutting it
            // in two. The remaining single piece stays connected, but may
            // lose contact with abutting shapes, so report it.
            let pieces = if spans_y {
                self.cut_vertical_band(defect)
            } else {
                self.cut_horizontal_band(defect)
            };
            return Some(pieces);
        }
        None
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})..({},{})", self.x0, self.y0, self.x1, self.y1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalises() {
        let r = Rect::new(10, 20, 0, 5);
        assert_eq!(r, Rect::new(0, 5, 10, 20));
        assert_eq!(r.width(), 10);
        assert_eq!(r.height(), 15);
        assert_eq!(r.area(), 150);
    }

    #[test]
    fn square_is_centred() {
        let s = Rect::square(100, 100, 10);
        assert_eq!(s.width(), 10);
        assert_eq!(s.height(), 10);
        assert!(s.contains_point(100, 100));
    }

    #[test]
    fn touches_vs_overlaps() {
        let a = Rect::new(0, 0, 10, 10);
        let edge = Rect::new(10, 0, 20, 10);
        assert!(a.touches(&edge));
        assert!(!a.overlaps(&edge));
        let inner = Rect::new(5, 5, 15, 15);
        assert!(a.overlaps(&inner));
        let far = Rect::new(11, 0, 20, 10);
        assert!(!a.touches(&far));
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 10, 10)));
        assert_eq!(a.union(&b), Rect::new(0, 0, 15, 15));
        assert_eq!(a.intersection(&Rect::new(20, 20, 30, 30)), None);
    }

    #[test]
    fn sever_misses() {
        let wire = Rect::new(0, 0, 100, 10);
        assert_eq!(wire.sever(&Rect::new(200, 0, 210, 10)), None);
        // Nibble: does not span the cross-section.
        assert_eq!(wire.sever(&Rect::new(50, 5, 60, 20)), None);
    }

    #[test]
    fn sever_cuts_horizontal_wire() {
        let wire = Rect::new(0, 0, 100, 10);
        let defect = Rect::new(40, -5, 60, 15); // spans y fully
        let pieces = wire.sever(&defect).unwrap();
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0], Rect::new(0, 0, 40, 10));
        assert_eq!(pieces[1], Rect::new(60, 0, 100, 10));
    }

    #[test]
    fn sever_cuts_vertical_wire() {
        let wire = Rect::new(0, 0, 10, 100);
        let defect = Rect::new(-5, 40, 15, 60);
        let pieces = wire.sever(&defect).unwrap();
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0], Rect::new(0, 0, 10, 40));
        assert_eq!(pieces[1], Rect::new(0, 60, 10, 100));
    }

    #[test]
    fn sever_removes_covered_shape() {
        let pad = Rect::new(0, 0, 10, 10);
        let defect = Rect::new(-5, -5, 15, 15);
        assert_eq!(pad.sever(&defect), Some(Vec::new()));
    }

    #[test]
    fn sever_shortens_end_of_wire() {
        let wire = Rect::new(0, 0, 100, 10);
        let defect = Rect::new(80, -5, 120, 15);
        let pieces = wire.sever(&defect).unwrap();
        assert_eq!(pieces, vec![Rect::new(0, 0, 80, 10)]);
    }

    #[test]
    fn expanded_grows_all_sides() {
        let r = Rect::new(0, 0, 10, 10).expanded(5);
        assert_eq!(r, Rect::new(-5, -5, 15, 15));
    }
}
