//! The CMOS layer stack.

use std::fmt;

/// Mask layers of the reference single-poly, double-metal CMOS process —
/// the stack of the paper's 0.8 µm-era Philips process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Layer {
    /// N-well (bulk of PMOS devices).
    Nwell,
    /// Active (diffusion) area.
    Active,
    /// Polysilicon.
    Poly,
    /// Contact cut (metal1 to poly or active).
    Contact,
    /// First metal.
    Metal1,
    /// Via cut (metal1 to metal2).
    Via,
    /// Second metal.
    Metal2,
}

impl Layer {
    /// All layers, in stack order.
    pub const ALL: [Layer; 7] = [
        Layer::Nwell,
        Layer::Active,
        Layer::Poly,
        Layer::Contact,
        Layer::Metal1,
        Layer::Via,
        Layer::Metal2,
    ];

    /// Dense index for per-layer tables.
    pub fn index(self) -> usize {
        match self {
            Layer::Nwell => 0,
            Layer::Active => 1,
            Layer::Poly => 2,
            Layer::Contact => 3,
            Layer::Metal1 => 4,
            Layer::Via => 5,
            Layer::Metal2 => 6,
        }
    }

    /// `true` for layers that route signals (can be bridged by extra
    /// material or cut by missing material).
    pub fn is_conductor(self) -> bool {
        matches!(
            self,
            Layer::Active | Layer::Poly | Layer::Metal1 | Layer::Metal2
        )
    }

    /// `true` for inter-layer connection cuts.
    pub fn is_cut(self) -> bool {
        matches!(self, Layer::Contact | Layer::Via)
    }

    /// The pair of conductor layers a cut layer connects.
    pub fn connects(self) -> Option<(Layer, Layer)> {
        match self {
            // A contact joins metal1 to poly *or* active, depending on what
            // lies underneath; both candidates are returned by the caller's
            // geometry query. Report the wider option here.
            Layer::Contact => Some((Layer::Metal1, Layer::Poly)),
            Layer::Via => Some((Layer::Metal1, Layer::Metal2)),
            _ => None,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Layer::Nwell => "nwell",
            Layer::Active => "active",
            Layer::Poly => "poly",
            Layer::Contact => "contact",
            Layer::Metal1 => "metal1",
            Layer::Via => "via",
            Layer::Metal2 => "metal2",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; 7];
        for layer in Layer::ALL {
            assert!(!seen[layer.index()]);
            seen[layer.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn classification() {
        assert!(Layer::Metal1.is_conductor());
        assert!(!Layer::Contact.is_conductor());
        assert!(Layer::Via.is_cut());
        assert!(!Layer::Poly.is_cut());
        assert_eq!(Layer::Via.connects(), Some((Layer::Metal1, Layer::Metal2)));
    }
}
