//! # dotm-layout — mask-level layout geometry for defect simulation
//!
//! The paper's defect simulator (VLASIC) works on real mask geometry: spot
//! defects are sprinkled over a cell's layout and their electrical effect is
//! decided geometrically. This crate provides that substrate:
//!
//! * [`Rect`] — integer-nanometre rectilinear geometry with the severing
//!   rules missing-material defects need;
//! * [`Layer`] — the single-poly double-metal CMOS stack of the paper's
//!   0.8 µm-era process;
//! * [`Layout`] — net-tagged shapes plus transistor-channel records
//!   ([`TransistorGeom`]) and terminal landing pads ([`Pin`]);
//! * [`SpatialIndex`] — per-layer uniform grid making 10-million-defect
//!   sprinkles O(defects);
//! * [`connect`] — geometric connectivity: [`connect::extract`] verifies a
//!   layout against its net tags, [`connect::open_partition`] decides
//!   whether a missing-material defect electrically splits a net and which
//!   device terminals end up on each side.
//!
//! ```
//! use dotm_layout::{connect, Layer, Layout, Rect, SpatialIndex};
//! let mut lo = Layout::new("wire-pair");
//! let a = lo.net("a");
//! let b = lo.net("b");
//! lo.wire_h(a, Layer::Metal1, 0, 10_000, 0, 700);
//! lo.wire_h(b, Layer::Metal1, 0, 10_000, 1_400, 700);
//! let idx = SpatialIndex::build(&lo);
//! let extracted = connect::extract(&lo, &idx);
//! assert!(extracted.violations.is_empty());
//! // A 2 µm extra-metal defect between the wires would bridge them:
//! let defect = Rect::square(5_000, 700, 2_000);
//! assert_eq!(idx.query(&lo, Layer::Metal1, &defect).len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connect;
mod geom;
mod index;
mod layer;
mod layout;
mod render;

pub use connect::{ExtractViolation, Extracted, OpenPartition, UnionFind};
pub use geom::Rect;
pub use index::SpatialIndex;
pub use layer::Layer;
pub use layout::{ChannelType, Layout, NetId, Pin, Shape, ShapeId, TransistorGeom};
pub use render::{render_svg, RenderOptions};
