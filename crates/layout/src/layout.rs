//! The [`Layout`] container: tagged mask shapes, transistor channels and
//! terminal pins.

use crate::geom::Rect;
use crate::layer::Layer;
use std::collections::HashMap;
use std::fmt;

/// Index of a net within a [`Layout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a shape within a [`Layout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShapeId(pub(crate) u32);

impl ShapeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A rectangle of mask material tagged with the circuit net it implements.
///
/// Net tags come from the layout generator (which knows the connectivity by
/// construction); the extraction pass in [`crate::connect`] verifies that
/// geometric connectivity agrees with the tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shape {
    /// Mask layer.
    pub layer: Layer,
    /// Geometry.
    pub rect: Rect,
    /// The net this piece of material belongs to.
    pub net: NetId,
}

/// Channel polarity of a transistor's geometry (kept independent of
/// `dotm-netlist` so the layout crate stands alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelType {
    /// N-channel.
    N,
    /// P-channel.
    P,
}

/// The geometric record of a MOSFET: where its channel sits and which nets
/// its terminals belong to. Gate-oxide pinholes and new/shorted-device
/// defects are resolved against these records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransistorGeom {
    /// Netlist device name.
    pub device: String,
    /// Channel polarity.
    pub ty: ChannelType,
    /// The channel region (poly over active).
    pub channel: Rect,
    /// Gate net.
    pub gate_net: NetId,
    /// Drain net.
    pub drain_net: NetId,
    /// Source net.
    pub source_net: NetId,
    /// Bulk net (substrate or well).
    pub bulk_net: NetId,
}

/// A device terminal's landing position in the layout, used to partition
/// terminals across the two sides of an open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pin {
    /// Netlist device name.
    pub device: String,
    /// Terminal index in `dotm_netlist::Device::terminals` order.
    pub terminal: usize,
    /// The net the terminal connects to.
    pub net: NetId,
    /// Layer the terminal lands on.
    pub layer: Layer,
    /// Landing region.
    pub at: Rect,
}

/// A mask-level cell layout with net-tagged shapes.
///
/// ```
/// use dotm_layout::{Layer, Layout, Rect};
/// let mut lo = Layout::new("cell");
/// let a = lo.net("a");
/// lo.add_rect(a, Layer::Metal1, Rect::new(0, 0, 10_000, 700));
/// assert_eq!(lo.shape_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Layout {
    name: String,
    net_names: Vec<String>,
    net_index: HashMap<String, NetId>,
    shapes: Vec<Shape>,
    transistors: Vec<TransistorGeom>,
    pins: Vec<Pin>,
    substrate_net: Option<NetId>,
}

impl Layout {
    /// Creates an empty layout.
    pub fn new(name: impl Into<String>) -> Self {
        Layout {
            name: name.into(),
            net_names: Vec::new(),
            net_index: HashMap::new(),
            shapes: Vec::new(),
            transistors: Vec::new(),
            pins: Vec::new(),
            substrate_net: None,
        }
    }

    /// The layout's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the net with the given name, creating it if necessary.
    pub fn net(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.net_index.get(name) {
            return id;
        }
        let id = NetId(self.net_names.len() as u32);
        self.net_names.push(name.to_string());
        self.net_index.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing net by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_index.get(name).copied()
    }

    /// The name of a net.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this layout.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.net_names[id.index()]
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Iterates over all `(NetId, name)` pairs.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &str)> {
        self.net_names
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n.as_str()))
    }

    /// Declares which net is the substrate (bulk of NMOS devices and target
    /// of junction pinholes outside wells) — typically `"gnd"`.
    pub fn set_substrate_net(&mut self, net: NetId) {
        self.substrate_net = Some(net);
    }

    /// The substrate net, if declared.
    pub fn substrate_net(&self) -> Option<NetId> {
        self.substrate_net
    }

    /// Adds a shape; returns its id.
    pub fn add_rect(&mut self, net: NetId, layer: Layer, rect: Rect) -> ShapeId {
        let id = ShapeId(self.shapes.len() as u32);
        self.shapes.push(Shape { layer, rect, net });
        id
    }

    /// Adds a horizontal wire of the given `width` centred on `y`,
    /// spanning `x0..x1`.
    pub fn wire_h(
        &mut self,
        net: NetId,
        layer: Layer,
        x0: i64,
        x1: i64,
        y: i64,
        width: i64,
    ) -> ShapeId {
        self.add_rect(
            net,
            layer,
            Rect::new(x0, y - width / 2, x1, y + width - width / 2),
        )
    }

    /// Adds a vertical wire of the given `width` centred on `x`,
    /// spanning `y0..y1`.
    pub fn wire_v(
        &mut self,
        net: NetId,
        layer: Layer,
        x: i64,
        y0: i64,
        y1: i64,
        width: i64,
    ) -> ShapeId {
        self.add_rect(
            net,
            layer,
            Rect::new(x - width / 2, y0, x + width - width / 2, y1),
        )
    }

    /// Adds a square contact cut (metal1 ↔ poly/active) centred at
    /// `(cx, cy)`.
    pub fn add_contact(&mut self, net: NetId, cx: i64, cy: i64, size: i64) -> ShapeId {
        self.add_rect(net, Layer::Contact, Rect::square(cx, cy, size))
    }

    /// Adds a square via cut (metal1 ↔ metal2) centred at `(cx, cy)`.
    pub fn add_via(&mut self, net: NetId, cx: i64, cy: i64, size: i64) -> ShapeId {
        self.add_rect(net, Layer::Via, Rect::square(cx, cy, size))
    }

    /// Records a transistor's channel geometry.
    pub fn add_transistor(&mut self, t: TransistorGeom) {
        self.transistors.push(t);
    }

    /// Records a terminal pin.
    pub fn add_pin(&mut self, pin: Pin) {
        self.pins.push(pin);
    }

    /// All shapes.
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Shape by id.
    pub fn shape(&self, id: ShapeId) -> &Shape {
        &self.shapes[id.index()]
    }

    /// Number of shapes.
    pub fn shape_count(&self) -> usize {
        self.shapes.len()
    }

    /// All transistor records.
    pub fn transistors(&self) -> &[TransistorGeom] {
        &self.transistors
    }

    /// All pins.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// Pins of a given net.
    pub fn pins_of_net(&self, net: NetId) -> impl Iterator<Item = &Pin> {
        self.pins.iter().filter(move |p| p.net == net)
    }

    /// The bounding box of all shapes, or `None` for an empty layout.
    pub fn bbox(&self) -> Option<Rect> {
        let mut it = self.shapes.iter();
        let first = it.next()?.rect;
        Some(it.fold(first, |acc, s| acc.union(&s.rect)))
    }

    /// Total shape area on a layer (nm², counting overlaps twice — adequate
    /// for the relative-exposure statistics the defect model needs).
    pub fn layer_area(&self, layer: Layer) -> i64 {
        self.shapes
            .iter()
            .filter(|s| s.layer == layer)
            .map(|s| s.rect.area())
            .sum()
    }

    /// Merges another layout into this one at an offset, remapping its nets
    /// by name. Used to assemble multi-macro regions (e.g. a comparator
    /// column with its shared clock/bias trunks).
    pub fn merge(&mut self, other: &Layout, dx: i64, dy: i64) {
        let net_map: Vec<NetId> = other.net_names.iter().map(|name| self.net(name)).collect();
        for s in &other.shapes {
            self.add_rect(
                net_map[s.net.index()],
                s.layer,
                Rect::new(
                    s.rect.x0 + dx,
                    s.rect.y0 + dy,
                    s.rect.x1 + dx,
                    s.rect.y1 + dy,
                ),
            );
        }
        for t in &other.transistors {
            self.transistors.push(TransistorGeom {
                device: t.device.clone(),
                ty: t.ty,
                channel: Rect::new(
                    t.channel.x0 + dx,
                    t.channel.y0 + dy,
                    t.channel.x1 + dx,
                    t.channel.y1 + dy,
                ),
                gate_net: net_map[t.gate_net.index()],
                drain_net: net_map[t.drain_net.index()],
                source_net: net_map[t.source_net.index()],
                bulk_net: net_map[t.bulk_net.index()],
            });
        }
        for p in &other.pins {
            self.pins.push(Pin {
                device: p.device.clone(),
                terminal: p.terminal,
                net: net_map[p.net.index()],
                layer: p.layer,
                at: Rect::new(p.at.x0 + dx, p.at.y0 + dy, p.at.x1 + dx, p.at.y1 + dy),
            });
        }
        if self.substrate_net.is_none() {
            if let Some(sub) = other.substrate_net {
                self.substrate_net = Some(net_map[sub.index()]);
            }
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "layout {}: {} shapes, {} nets, {} transistors",
            self.name,
            self.shapes.len(),
            self.net_names.len(),
            self.transistors.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nets_are_interned() {
        let mut lo = Layout::new("t");
        let a = lo.net("a");
        assert_eq!(lo.net("a"), a);
        assert_eq!(lo.net_name(a), "a");
        assert_eq!(lo.find_net("b"), None);
    }

    #[test]
    fn wires_have_requested_extent() {
        let mut lo = Layout::new("t");
        let a = lo.net("a");
        let h = lo.wire_h(a, Layer::Metal1, 0, 1000, 100, 80);
        let r = lo.shape(h).rect;
        assert_eq!(r.width(), 1000);
        assert_eq!(r.height(), 80);
        let v = lo.wire_v(a, Layer::Metal2, 50, 0, 500, 100);
        let r = lo.shape(v).rect;
        assert_eq!(r.height(), 500);
        assert_eq!(r.width(), 100);
    }

    #[test]
    fn bbox_covers_all_shapes() {
        let mut lo = Layout::new("t");
        assert_eq!(lo.bbox(), None);
        let a = lo.net("a");
        lo.add_rect(a, Layer::Metal1, Rect::new(0, 0, 10, 10));
        lo.add_rect(a, Layer::Poly, Rect::new(100, 100, 110, 120));
        assert_eq!(lo.bbox(), Some(Rect::new(0, 0, 110, 120)));
    }

    #[test]
    fn layer_area_sums() {
        let mut lo = Layout::new("t");
        let a = lo.net("a");
        lo.add_rect(a, Layer::Metal1, Rect::new(0, 0, 10, 10));
        lo.add_rect(a, Layer::Metal1, Rect::new(20, 0, 30, 10));
        lo.add_rect(a, Layer::Poly, Rect::new(0, 0, 5, 5));
        assert_eq!(lo.layer_area(Layer::Metal1), 200);
        assert_eq!(lo.layer_area(Layer::Poly), 25);
    }

    #[test]
    fn merge_offsets_and_remaps() {
        let mut cell = Layout::new("cell");
        let x = cell.net("x");
        cell.add_rect(x, Layer::Metal1, Rect::new(0, 0, 10, 10));
        cell.add_pin(Pin {
            device: "M1".into(),
            terminal: 0,
            net: x,
            layer: Layer::Metal1,
            at: Rect::new(0, 0, 10, 10),
        });

        let mut top = Layout::new("top");
        let _other = top.net("other");
        top.merge(&cell, 100, 200);
        assert_eq!(top.shape_count(), 1);
        let s = top.shape(ShapeId(0));
        assert_eq!(s.rect, Rect::new(100, 200, 110, 210));
        assert_eq!(top.net_name(s.net), "x");
        assert_eq!(top.pins()[0].at, Rect::new(100, 200, 110, 210));
    }
}
