//! Property-based tests on the geometry kernel: the severing rules and
//! rectangle algebra must hold for arbitrary inputs — the defect
//! simulator leans on them for millions of random rectangles.

use dotm_layout::Rect;
use proptest::prelude::*;

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (-5000i64..5000, -5000i64..5000, 1i64..4000, 1i64..4000)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #[test]
    fn intersection_is_contained_in_both(a in rect_strategy(), b in rect_strategy()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains(&i));
            prop_assert!(b.contains(&i));
            prop_assert!(i.area() <= a.area());
            prop_assert!(i.area() <= b.area());
        } else {
            prop_assert!(!a.touches(&b));
        }
    }

    #[test]
    fn union_contains_both(a in rect_strategy(), b in rect_strategy()) {
        let u = a.union(&b);
        prop_assert!(u.contains(&a));
        prop_assert!(u.contains(&b));
    }

    #[test]
    fn overlap_implies_touch(a in rect_strategy(), b in rect_strategy()) {
        if a.overlaps(&b) {
            prop_assert!(a.touches(&b));
        }
    }

    #[test]
    fn sever_pieces_stay_inside_and_avoid_the_cut(
        shape in rect_strategy(),
        cut in rect_strategy(),
    ) {
        if let Some(pieces) = shape.sever(&cut) {
            prop_assert!(pieces.len() <= 2);
            for p in &pieces {
                // Pieces are non-degenerate parts of the original...
                prop_assert!(!p.is_degenerate());
                prop_assert!(shape.contains(p), "piece {p} outside {shape}");
                // ...and do not strictly overlap the removed material.
                prop_assert!(!p.overlaps(&cut), "piece {p} overlaps cut {cut}");
            }
            // Two pieces never overlap each other.
            if pieces.len() == 2 {
                prop_assert!(!pieces[0].overlaps(&pieces[1]));
            }
        } else {
            // No severing: either the cut misses, or it only nibbles an
            // edge (does not span a full cross-section of the shape).
            let spans_x = cut.x0 <= shape.x0 && cut.x1 >= shape.x1;
            let spans_y = cut.y0 <= shape.y0 && cut.y1 >= shape.y1;
            prop_assert!(
                !shape.overlaps(&cut) || (!spans_x && !spans_y),
                "cut {cut} spans {shape} but sever returned None"
            );
        }
    }

    #[test]
    fn sever_conserves_area(shape in rect_strategy(), cut in rect_strategy()) {
        if let Some(pieces) = shape.sever(&cut) {
            let removed = shape.intersection(&cut).map(|i| i.area()).unwrap_or(0);
            let piece_area: i64 = pieces.iter().map(Rect::area).sum();
            // For band cuts the removed strip accounts exactly for the
            // missing area.
            prop_assert_eq!(piece_area + removed, shape.area());
        }
    }

    #[test]
    fn expanded_contains_original(a in rect_strategy(), m in 0i64..1000) {
        prop_assert!(a.expanded(m).contains(&a));
    }

    #[test]
    fn square_has_requested_size(cx in -10000i64..10000, cy in -10000i64..10000, s in 1i64..5000) {
        let q = Rect::square(cx, cy, s);
        prop_assert_eq!(q.width(), s);
        prop_assert_eq!(q.height(), s);
        prop_assert!(q.contains_point(cx, cy));
    }
}
