//! Randomised tests on the geometry kernel: the severing rules and
//! rectangle algebra must hold for arbitrary inputs — the defect
//! simulator leans on them for millions of random rectangles.
//!
//! Formerly proptest; now driven by the in-tree seeded PRNG so the
//! workspace builds hermetically. Cases are deterministic per seed and
//! the failing input is printed by the assertion message.

use dotm_layout::Rect;
use dotm_rng::rngs::StdRng;
use dotm_rng::{Rng, SeedableRng};

const CASES: usize = 2_000;

fn random_rect(rng: &mut StdRng) -> Rect {
    let x = rng.gen_range(-5000i64..5000);
    let y = rng.gen_range(-5000i64..5000);
    let w = rng.gen_range(1i64..4000);
    let h = rng.gen_range(1i64..4000);
    Rect::new(x, y, x + w, y + h)
}

#[test]
fn intersection_is_contained_in_both() {
    let mut rng = StdRng::seed_from_u64(0x9e01);
    for _ in 0..CASES {
        let a = random_rect(&mut rng);
        let b = random_rect(&mut rng);
        if let Some(i) = a.intersection(&b) {
            assert!(a.contains(&i), "{i} outside {a}");
            assert!(b.contains(&i), "{i} outside {b}");
            assert!(i.area() <= a.area());
            assert!(i.area() <= b.area());
        } else {
            assert!(!a.touches(&b), "{a} touches {b} but no intersection");
        }
    }
}

#[test]
fn union_contains_both() {
    let mut rng = StdRng::seed_from_u64(0x9e02);
    for _ in 0..CASES {
        let a = random_rect(&mut rng);
        let b = random_rect(&mut rng);
        let u = a.union(&b);
        assert!(u.contains(&a), "{u} misses {a}");
        assert!(u.contains(&b), "{u} misses {b}");
    }
}

#[test]
fn overlap_implies_touch() {
    let mut rng = StdRng::seed_from_u64(0x9e03);
    for _ in 0..CASES {
        let a = random_rect(&mut rng);
        let b = random_rect(&mut rng);
        if a.overlaps(&b) {
            assert!(a.touches(&b), "{a} overlaps but does not touch {b}");
        }
    }
}

#[test]
fn sever_pieces_stay_inside_and_avoid_the_cut() {
    let mut rng = StdRng::seed_from_u64(0x9e04);
    for _ in 0..CASES {
        let shape = random_rect(&mut rng);
        let cut = random_rect(&mut rng);
        if let Some(pieces) = shape.sever(&cut) {
            assert!(pieces.len() <= 2);
            for p in &pieces {
                // Pieces are non-degenerate parts of the original...
                assert!(!p.is_degenerate());
                assert!(shape.contains(p), "piece {p} outside {shape}");
                // ...and do not strictly overlap the removed material.
                assert!(!p.overlaps(&cut), "piece {p} overlaps cut {cut}");
            }
            // Two pieces never overlap each other.
            if pieces.len() == 2 {
                assert!(!pieces[0].overlaps(&pieces[1]));
            }
        } else {
            // No severing: either the cut misses, or it only nibbles an
            // edge (does not span a full cross-section of the shape).
            let spans_x = cut.x0 <= shape.x0 && cut.x1 >= shape.x1;
            let spans_y = cut.y0 <= shape.y0 && cut.y1 >= shape.y1;
            assert!(
                !shape.overlaps(&cut) || (!spans_x && !spans_y),
                "cut {cut} spans {shape} but sever returned None"
            );
        }
    }
}

#[test]
fn sever_conserves_area() {
    let mut rng = StdRng::seed_from_u64(0x9e05);
    for _ in 0..CASES {
        let shape = random_rect(&mut rng);
        let cut = random_rect(&mut rng);
        if let Some(pieces) = shape.sever(&cut) {
            let removed = shape.intersection(&cut).map(|i| i.area()).unwrap_or(0);
            let piece_area: i64 = pieces.iter().map(Rect::area).sum();
            // For band cuts the removed strip accounts exactly for the
            // missing area.
            assert_eq!(
                piece_area + removed,
                shape.area(),
                "shape {shape} cut {cut}"
            );
        }
    }
}

#[test]
fn expanded_contains_original() {
    let mut rng = StdRng::seed_from_u64(0x9e06);
    for _ in 0..CASES {
        let a = random_rect(&mut rng);
        let m = rng.gen_range(0i64..1000);
        assert!(a.expanded(m).contains(&a), "{a} expanded by {m}");
    }
}

#[test]
fn square_has_requested_size() {
    let mut rng = StdRng::seed_from_u64(0x9e07);
    for _ in 0..CASES {
        let cx = rng.gen_range(-10_000i64..10_000);
        let cy = rng.gen_range(-10_000i64..10_000);
        let s = rng.gen_range(1i64..5000);
        let q = Rect::square(cx, cy, s);
        assert_eq!(q.width(), s);
        assert_eq!(q.height(), s);
        assert!(q.contains_point(cx, cy));
    }
}
