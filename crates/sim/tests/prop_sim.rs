//! Randomised tests on the simulator: linear-circuit identities and
//! model invariants that must hold for arbitrary parameter values.
//!
//! Formerly proptest; now seeded loops over the in-tree PRNG so the
//! workspace builds hermetically.

use dotm_netlist::{MosType, MosfetParams, Netlist, Waveform};
use dotm_rng::rngs::StdRng;
use dotm_rng::{Rng, SeedableRng};
use dotm_sim::{diode_eval, mosfet_eval, DenseMatrix, Simulator};

#[test]
fn divider_matches_closed_form() {
    let mut rng = StdRng::seed_from_u64(0x5101);
    for _ in 0..64 {
        let r1 = rng.gen_range(1.0f64..1e6);
        let r2 = rng.gen_range(1.0f64..1e6);
        let v = rng.gen_range(0.1f64..10.0);
        let mut nl = Netlist::new("div");
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add_vsource("V1", a, Netlist::GROUND, Waveform::dc(v))
            .unwrap();
        nl.add_resistor("R1", a, b, r1).unwrap();
        nl.add_resistor("R2", b, Netlist::GROUND, r2).unwrap();
        let mut sim = Simulator::new(&nl);
        let op = sim.dc_op().unwrap();
        let expect = v * r2 / (r1 + r2);
        assert!(
            (op.voltage(b) - expect).abs() < 1e-6 * v.max(1.0) + 1e-6,
            "r1 {r1} r2 {r2} v {v}"
        );
    }
}

#[test]
fn superposition_holds_for_linear_network() {
    let mut rng = StdRng::seed_from_u64(0x5102);
    for _ in 0..64 {
        let v1 = rng.gen_range(0.1f64..5.0);
        let v2 = rng.gen_range(0.1f64..5.0);
        let r = rng.gen_range(10.0f64..1e5);
        // Two sources into a common node through equal resistors.
        let run = |va: f64, vb: f64| -> f64 {
            let mut nl = Netlist::new("sum");
            let a = nl.node("a");
            let b = nl.node("b");
            let m = nl.node("m");
            nl.add_vsource("VA", a, Netlist::GROUND, Waveform::dc(va))
                .unwrap();
            nl.add_vsource("VB", b, Netlist::GROUND, Waveform::dc(vb))
                .unwrap();
            nl.add_resistor("RA", a, m, r).unwrap();
            nl.add_resistor("RB", b, m, r).unwrap();
            nl.add_resistor("RL", m, Netlist::GROUND, r).unwrap();
            let mut sim = Simulator::new(&nl);
            sim.dc_op().unwrap().voltage(m)
        };
        let both = run(v1, v2);
        let only1 = run(v1, 0.0);
        let only2 = run(0.0, v2);
        assert!((both - only1 - only2).abs() < 1e-6, "v1 {v1} v2 {v2} r {r}");
    }
}

#[test]
fn kcl_holds_at_the_supply() {
    let mut rng = StdRng::seed_from_u64(0x5103);
    for _ in 0..64 {
        let r1 = rng.gen_range(10.0f64..1e5);
        let r2 = rng.gen_range(10.0f64..1e5);
        // Two independent branches from the supply: branch currents add.
        let mut nl = Netlist::new("kcl");
        let vdd = nl.node("vdd");
        nl.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(5.0))
            .unwrap();
        nl.add_resistor("R1", vdd, Netlist::GROUND, r1).unwrap();
        nl.add_resistor("R2", vdd, Netlist::GROUND, r2).unwrap();
        let mut sim = Simulator::new(&nl);
        let op = sim.dc_op().unwrap();
        let i = op.branch_current(nl.device_id("VDD").unwrap()).unwrap();
        let expect = -(5.0 / r1 + 5.0 / r2);
        assert!(
            (i - expect).abs() < 1e-7 + 1e-6 * expect.abs(),
            "r1 {r1} r2 {r2}"
        );
    }
}

#[test]
fn diode_current_is_monotone() {
    let mut rng = StdRng::seed_from_u64(0x5104);
    for _ in 0..200 {
        let v1 = rng.gen_range(-2.0f64..1.0);
        let dv = rng.gen_range(1e-6f64..0.5);
        let p = dotm_netlist::DiodeParams::default();
        let (i1, g1) = diode_eval(v1, &p);
        let (i2, _) = diode_eval(v1 + dv, &p);
        assert!(i2 >= i1, "v1 {v1} dv {dv}");
        assert!(g1 > 0.0, "v1 {v1}");
    }
}

#[test]
fn mosfet_current_monotone_in_vgs() {
    let mut rng = StdRng::seed_from_u64(0x5105);
    for _ in 0..200 {
        let vgs = rng.gen_range(0.0f64..4.0);
        let vds = rng.gen_range(0.05f64..5.0);
        let dv = rng.gen_range(1e-4f64..0.5);
        let p = MosfetParams::nmos_default();
        let a = mosfet_eval(vgs, vds, 0.0, MosType::Nmos, &p);
        let b = mosfet_eval(vgs + dv, vds, 0.0, MosType::Nmos, &p);
        assert!(b.ids >= a.ids - 1e-15, "vgs {vgs} vds {vds} dv {dv}");
    }
}

#[test]
fn mosfet_source_drain_reversal_antisymmetric() {
    let mut rng = StdRng::seed_from_u64(0x5106);
    for _ in 0..200 {
        let vg = rng.gen_range(0.0f64..5.0);
        let vd = rng.gen_range(0.0f64..5.0);
        let vs = rng.gen_range(0.0f64..5.0);
        let p = MosfetParams::nmos_default();
        let fwd = mosfet_eval(vg - vs, vd - vs, -vs, MosType::Nmos, &p);
        let rev = mosfet_eval(vg - vd, vs - vd, -vd, MosType::Nmos, &p);
        assert!(
            (fwd.ids + rev.ids).abs() < 1e-12 + 1e-9 * fwd.ids.abs(),
            "vg {vg} vd {vd} vs {vs}"
        );
    }
}

#[test]
fn lu_solves_diagonally_dominant_systems() {
    let mut rng = StdRng::seed_from_u64(0x5107);
    for _ in 0..64 {
        let seed = rng.gen_range(0u64..1000);
        let n = rng.gen_range(2usize..24);
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let mut m = DenseMatrix::zeros(n);
        for r in 0..n {
            let mut rowsum = 0.0;
            for c in 0..n {
                if r != c {
                    let v = next();
                    m.set(r, c, v);
                    rowsum += v.abs();
                }
            }
            m.set(r, r, rowsum + 1.0);
        }
        let a = m.clone();
        let x: Vec<f64> = (0..n).map(|i| next() * (i as f64 + 1.0)).collect();
        let mut b = a.mul_vec(&x);
        assert!(m.solve_in_place(&mut b).is_ok(), "seed {seed} n {n}");
        for (got, want) in b.iter().zip(&x) {
            assert!(
                (got - want).abs() < 1e-7 * (1.0 + want.abs()),
                "seed {seed} n {n}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn rc_transient_never_overshoots_supply() {
    let mut rng = StdRng::seed_from_u64(0x5108);
    for _ in 0..24 {
        let r = rng.gen_range(100.0f64..1e5);
        let c = rng.gen_range(1e-12f64..1e-9);
        let v = rng.gen_range(0.5f64..5.0);
        let mut nl = Netlist::new("rc");
        let a = nl.node("a");
        let b = nl.node("b");
        nl.add_vsource(
            "V1",
            a,
            Netlist::GROUND,
            Waveform::pulse(0.0, v, 0.0, 1e-9, 1e-9, 1.0, 0.0),
        )
        .unwrap();
        nl.add_resistor("R1", a, b, r).unwrap();
        nl.add_capacitor("C1", b, Netlist::GROUND, c).unwrap();
        let tau = r * c;
        let mut sim = Simulator::new(&nl);
        let tr = sim.transient(5.0 * tau, tau / 20.0).unwrap();
        for k in 0..tr.len() {
            let vb = tr.voltage(k, b);
            assert!(
                vb >= -1e-6 && vb <= v + 1e-6,
                "r {r} c {c}: v(b) = {vb} outside [0, {v}]"
            );
        }
        // Settled at 5τ.
        let end = tr.voltage(tr.len() - 1, b);
        assert!((end - v).abs() < 0.02 * v, "r {r} c {c}: end {end}");
    }
}
