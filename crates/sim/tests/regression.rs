//! Regression tests for solver edge cases: override hygiene on failed
//! sweeps, non-multiple transient grids, NaN-total time lookup, and the
//! telemetry accumulator.

use dotm_netlist::{Netlist, Waveform};
use dotm_sim::{SimOptions, Simulator};

/// A 2 V source over a 1k/1k divider: v(mid) = 1 V.
fn divider() -> Netlist {
    let mut nl = Netlist::new("divider");
    let vin = nl.node("in");
    let mid = nl.node("mid");
    nl.add_vsource("V1", vin, Netlist::GROUND, Waveform::dc(2.0))
        .unwrap();
    nl.add_resistor("R1", vin, mid, 1e3).unwrap();
    nl.add_resistor("R2", mid, Netlist::GROUND, 1e3).unwrap();
    nl
}

#[test]
fn failed_dc_sweep_does_not_leak_override() {
    let nl = divider();
    let mid = nl.find_node("mid").unwrap();
    let mut sim = Simulator::new(&nl);
    // The NaN point cannot converge, so the sweep fails after the first
    // point — and must still clear the override it installed.
    let err = sim.dc_sweep("V1", &[4.0, f64::NAN]);
    assert!(err.is_err(), "NaN sweep point must fail");
    let op = sim.dc_op().expect("post-sweep dc");
    assert!(
        (op.voltage(mid) - 1.0).abs() < 1e-6,
        "override leaked: v(mid) = {} (want 1.0 from the netlist's 2 V)",
        op.voltage(mid)
    );
}

#[test]
fn failed_dc_sweep_restores_preexisting_override() {
    let nl = divider();
    let mid = nl.find_node("mid").unwrap();
    let mut sim = Simulator::new(&nl);
    sim.override_source("V1", 3.0).unwrap();
    let err = sim.dc_sweep("V1", &[4.0, f64::NAN]);
    assert!(err.is_err());
    let op = sim.dc_op().expect("post-sweep dc");
    assert!(
        (op.voltage(mid) - 1.5).abs() < 1e-6,
        "pre-existing override lost: v(mid) = {} (want 1.5 from 3 V)",
        op.voltage(mid)
    );
}

#[test]
fn successful_dc_sweep_still_clears_override() {
    let nl = divider();
    let mid = nl.find_node("mid").unwrap();
    let mut sim = Simulator::new(&nl);
    let ops = sim.dc_sweep("V1", &[0.0, 4.0]).expect("sweep");
    assert_eq!(ops.len(), 2);
    assert!((ops[1].voltage(mid) - 2.0).abs() < 1e-6);
    let op = sim.dc_op().expect("post-sweep dc");
    assert!((op.voltage(mid) - 1.0).abs() < 1e-6);
}

/// An RC so the transient has real dynamics.
fn rc() -> Netlist {
    let mut nl = Netlist::new("rc");
    let vin = nl.node("in");
    let out = nl.node("out");
    nl.add_vsource("V1", vin, Netlist::GROUND, Waveform::dc(1.0))
        .unwrap();
    nl.add_resistor("R1", vin, out, 1e3).unwrap();
    nl.add_capacitor("C1", out, Netlist::GROUND, 1e-12).unwrap();
    nl
}

#[test]
fn transient_grid_reaches_tstop_for_non_multiple_dt() {
    let nl = rc();
    let mut sim = Simulator::new(&nl);
    // 1 ns / 0.3 ns is not an integer ratio: the old grid stopped at
    // 0.9 ns. The final point must now land exactly on tstop.
    let tr = sim.transient(1e-9, 0.3e-9).expect("transient");
    let times = tr.times();
    assert_eq!(times.len(), 5, "0, .3, .6, .9, 1.0 ns");
    assert_eq!(*times.last().unwrap(), 1e-9);
    assert!((times[3] - 0.9e-9).abs() < 1e-24);
}

#[test]
fn transient_grid_unchanged_for_exact_multiple_dt() {
    let nl = rc();
    let mut sim = Simulator::new(&nl);
    let tr = sim.transient(1e-9, 0.25e-9).expect("transient");
    let times = tr.times();
    assert_eq!(times.len(), 5);
    for (k, &t) in times.iter().enumerate() {
        assert_eq!(t, k as f64 * 0.25e-9, "uniform grid must be exactly k·dt");
    }
}

#[test]
fn index_at_is_total_over_nan_queries() {
    let nl = rc();
    let mut sim = Simulator::new(&nl);
    let tr = sim.transient(1e-9, 0.25e-9).expect("transient");
    assert_eq!(tr.index_at(f64::NAN), 0);
    assert_eq!(tr.index_at(0.26e-9), 1);
    assert_eq!(tr.index_at(f64::INFINITY), tr.len() - 1);
    assert_eq!(tr.index_at(f64::NEG_INFINITY), 0);
}

#[test]
fn telemetry_counts_dc_and_transient_work() {
    let nl = divider();
    let mut sim = Simulator::new(&nl);
    sim.dc_op().expect("dc");
    let s = *sim.stats();
    assert_eq!(s.converged_plain, 1, "linear divider solves plainly");
    assert_eq!(s.nr_solves, 1);
    assert!(s.nr_iterations >= 2);
    assert_eq!(s.dc_failures, 0);

    let rc_nl = rc();
    let mut sim = Simulator::new(&rc_nl);
    let tr = sim.transient(1e-9, 0.25e-9).expect("transient");
    let s = *sim.stats();
    assert_eq!(s.tran_steps as usize, tr.len() - 1);
    assert!(s.converged_plain >= 1, "initial DC point recorded");

    // take_stats drains the accumulator.
    let taken = sim.take_stats();
    assert_eq!(taken, s);
    assert!(sim.stats().is_empty());
}

#[test]
fn telemetry_counts_failures() {
    let nl = divider();
    let mut sim = Simulator::with_options(
        &nl,
        SimOptions {
            max_iter: 1, // the first step from all-zeros is never within tolerance
            ..SimOptions::default()
        },
    );
    assert!(sim.dc_op().is_err());
    let s = sim.stats();
    assert_eq!(s.dc_failures, 1);
    assert!(s.maxiter_exhausted >= 1);
    assert_eq!(s.converged_plain + s.converged_gmin + s.converged_source, 0);
}

/// 2 V through 1k into a diode: a mildly nonlinear operating point that
/// plain Newton solves but only after re-linearising a few times.
fn diode_clamp() -> Netlist {
    let mut nl = Netlist::new("clamp");
    let vin = nl.node("in");
    let d = nl.node("d");
    nl.add_vsource("V1", vin, Netlist::GROUND, Waveform::dc(2.0))
        .unwrap();
    nl.add_resistor("R1", vin, d, 1e3).unwrap();
    nl.add_diode(
        "D1",
        d,
        Netlist::GROUND,
        dotm_netlist::DiodeParams::default(),
    )
    .unwrap();
    nl
}

#[test]
fn large_gmin_never_credits_an_unsolved_point() {
    // Plain Newton cannot finish in one iteration, so the solve falls
    // through to gmin stepping. The old ladder started at a fixed 1e-2
    // and skipped its body whenever the target gmin was above that —
    // crediting `converged_gmin` and returning the untouched all-zeros
    // vector as a "solution". The solve must now either produce the real
    // operating point or report failure.
    let nl = divider();
    let mid = nl.find_node("mid").unwrap();
    let mut sim = Simulator::with_options(
        &nl,
        SimOptions {
            max_iter: 1,
            gmin: 5e-2,
            ..SimOptions::default()
        },
    );
    match sim.dc_op() {
        Ok(op) => {
            // gmin = 50 mS loads each node, so the exact value shifts; the
            // point just must not be the unsolved zeros vector.
            assert!(
                op.voltage(mid) > 1e-3,
                "all-zeros vector passed off as a solution: v(mid) = {}",
                op.voltage(mid)
            );
        }
        Err(_) => {
            let s = sim.stats();
            assert_eq!(
                s.converged_gmin, 0,
                "failed solve must not credit gmin stepping"
            );
            assert_eq!(s.dc_failures, 1);
        }
    }
}

#[test]
fn large_gmin_solution_is_genuinely_solved() {
    // Same large target gmin with a realistic iteration budget: whatever
    // homotopy succeeds, the reported point must satisfy the (gmin-loaded)
    // circuit equations, not be a leftover initial guess.
    let nl = divider();
    let mid = nl.find_node("mid").unwrap();
    let mut sim = Simulator::with_options(
        &nl,
        SimOptions {
            gmin: 5e-2,
            ..SimOptions::default()
        },
    );
    let op = sim.dc_op().expect("dc with large gmin");
    // KCL at mid with the 50 mS gmin shunt: 2 V · 1 mS / (1 + 1 + 50) mS.
    let expect = 2.0 * 1e-3 / (1e-3 + 1e-3 + 5e-2);
    assert!(
        (op.voltage(mid) - expect).abs() < 1e-6,
        "v(mid) = {} (want {expect})",
        op.voltage(mid)
    );
}

#[test]
fn warm_seed_accepts_linear_circuit_at_first_iteration() {
    let nl = divider();
    let mid = nl.find_node("mid").unwrap();
    let mut cold = Simulator::new(&nl);
    let op = cold.dc_op().expect("cold dc");
    let cold_iters = cold.stats().nr_iterations;

    let mut warm = Simulator::new(&nl);
    assert!(warm.seed_dc_from(&op), "same-netlist seed must install");
    let wop = warm.dc_op().expect("warm dc");
    assert!((wop.voltage(mid) - 1.0).abs() < 1e-9);
    let s = *warm.stats();
    assert_eq!(s.warm_hits, 1);
    assert_eq!(s.warm_misses, 0);
    assert_eq!(s.nr_solves, 1);
    // A linear system's stamps do not depend on x, so an exact seed is
    // accepted on the very first iteration (the old `iter > 0` guard
    // forced a pointless second solve of the identical matrix).
    assert_eq!(s.nr_iterations, 1, "exact linear seed must not re-solve");
    assert!(
        cold_iters > 1,
        "cold linear solve needs its confirming pass"
    );
}

#[test]
fn warm_seed_still_relinearises_nonlinear_circuits() {
    let nl = diode_clamp();
    let d = nl.find_node("d").unwrap();
    let mut cold = Simulator::new(&nl);
    let op = cold.dc_op().expect("cold dc");
    let cold_iters = cold.stats().nr_iterations;

    let mut warm = Simulator::new(&nl);
    assert!(warm.seed_dc_from(&op));
    let wop = warm.dc_op().expect("warm dc");
    assert!((wop.voltage(d) - op.voltage(d)).abs() < 1e-9);
    let s = *warm.stats();
    assert_eq!(s.warm_hits, 1);
    // The diode stamps depend on x: even an exact seed needs at least one
    // confirming re-linearisation before it may be accepted.
    assert!(
        s.nr_iterations >= 2,
        "nonlinear seed accepted without re-linearising"
    );
    assert!(
        s.nr_iterations < cold_iters,
        "warm start saved nothing: {} vs {} cold",
        s.nr_iterations,
        cold_iters
    );
}

#[test]
fn warm_seed_remaps_appended_unknowns_and_rejects_reindexed_sources() {
    let nl = divider();
    let mut cold = Simulator::new(&nl);
    let op = cold.dc_op().expect("cold dc");

    // Fault injection only appends: extra node + bridge resistor after
    // the original devices. The nominal seed maps onto the larger
    // unknown vector.
    let mut faulted = divider();
    let mid = faulted.find_node("mid").unwrap();
    let x = faulted.node("x");
    faulted.add_resistor("RF", mid, x, 1e3).unwrap();
    faulted
        .add_resistor("RF2", x, Netlist::GROUND, 1e9)
        .unwrap();
    let mut warm = Simulator::new(&faulted);
    assert!(
        warm.seed_dc_from(&op),
        "append-only change must accept the seed"
    );
    let wop = warm.dc_op().expect("warm dc on faulted netlist");
    assert!((wop.voltage(mid) - 1.0).abs() < 1e-4);
    assert_eq!(warm.stats().warm_hits + warm.stats().warm_misses, 1);

    // Reordered construction reindexes the voltage source: the id prefix
    // no longer matches and the seed must be refused.
    let mut reordered = Netlist::new("reordered");
    let vin = reordered.node("in");
    let mid2 = reordered.node("mid");
    reordered.add_resistor("R1", vin, mid2, 1e3).unwrap();
    reordered
        .add_resistor("R2", mid2, Netlist::GROUND, 1e3)
        .unwrap();
    reordered
        .add_vsource("V1", vin, Netlist::GROUND, Waveform::dc(2.0))
        .unwrap();
    let mut other = Simulator::new(&reordered);
    assert!(
        !other.seed_dc_from(&op),
        "reindexed source ids must reject the seed"
    );
    other.dc_op().expect("cold dc still works");
    assert_eq!(other.stats().warm_hits, 0);
    assert_eq!(other.stats().warm_misses, 0);
}

#[test]
fn clamped_step_within_tolerance_converges_without_extra_iteration() {
    // The divider is linear, so the first Newton iteration computes the
    // exact solution. The guess is exact except v(mid), which sits
    // 1.0000001 V below it: just over the default 1.0 V step limit, with
    // an overshoot of 1e-7 — far inside tolerance. The clamp must be
    // applied before the tolerance test so this counts as converged in
    // one iteration; the old order (tolerance on the unclamped step,
    // then clamp) reported `limited` and burned a second full
    // assemble + LU pass on a point that was already accepted.
    let nl = divider();
    let mid = nl.find_node("mid").unwrap();
    let mut sim = Simulator::new(&nl);
    // Unknown order: node voltages (in, mid), then the V1 branch current
    // (−1 mA: the supply sources current, SPICE convention).
    let op = sim
        .dc_op_from(&[2.0, 1.0 - 1.000_000_1, -1e-3])
        .expect("divider dc");
    assert!((op.voltage(mid) - 1.0).abs() < 1e-6);
    let s = sim.stats();
    assert_eq!(s.nr_solves, 1);
    assert_eq!(
        s.nr_iterations, 1,
        "a clamped step within tolerance of the clamp must not cost an extra iteration"
    );
}

#[test]
fn clamped_step_far_from_target_still_iterates() {
    // Guard against false convergence from the restructure: when the
    // unclamped Newton target is far beyond the step limit, the limiter
    // walks ~1 V per iteration and convergence must wait until the
    // overshoot beyond the clamp shrinks below tolerance.
    let nl = divider();
    let mid = nl.find_node("mid").unwrap();
    let mut sim = Simulator::new(&nl);
    let op = sim.dc_op_from(&[2.0, -10.0, -1e-3]).expect("divider dc");
    assert!((op.voltage(mid) - 1.0).abs() < 1e-6);
    let iters = sim.stats().nr_iterations;
    assert!(
        (11..=13).contains(&iters),
        "an 11 V walk at a 1 V step limit must take ~12 iterations, got {iters}"
    );
}

#[test]
fn transient_grid_exact_for_fp_divisor_dt() {
    // `dt = tstop/3.0` is not an exact divisor in binary, but the grid
    // classification must still treat it as one: 3 uniform steps, no
    // spurious fourth point.
    let nl = rc();
    let mut sim = Simulator::new(&nl);
    let tstop = 1e-6;
    let dt = tstop / 3.0;
    let tr = sim.transient(tstop, dt).expect("transient");
    let times = tr.times();
    assert_eq!(times.len(), 4, "0, dt, 2·dt, 3·dt");
    for (k, &t) in times.iter().enumerate() {
        assert_eq!(t, k as f64 * dt);
    }
}

#[test]
fn transient_grid_keeps_final_partial_step_near_divisor() {
    // Near-divisor dt at a large step count: tstop overshoots 10000·dt
    // by 5e-5 of a step. The old `1e-9·tstop` tolerance (= 1e-5 of a
    // step here) classified this as exact and silently truncated the
    // grid one point short of tstop; a dt-relative tolerance must not.
    let nl = rc();
    let mut sim = Simulator::new(&nl);
    let dt = 1e-10;
    let tstop = 10_000.0 * dt * (1.0 + 5e-10);
    let tr = sim.transient(tstop, dt).expect("transient");
    let times = tr.times();
    assert_eq!(times.len(), 10_002, "10000 full steps + final partial step");
    assert_eq!(*times.last().unwrap(), tstop);
}

/// A CMOS inverter slewing a load cap — sharp pulse edges make Newton
/// fail at the full step size when `max_iter` is tight, which is the
/// step-halving workload the carry heuristic targets.
fn edgy_inverter() -> Netlist {
    use dotm_netlist::{MosType, MosfetParams};
    let mut nl = Netlist::new("edgy_inverter");
    let vdd = nl.node("vdd");
    let vin = nl.node("in");
    let out = nl.node("out");
    nl.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(5.0))
        .unwrap();
    nl.add_vsource(
        "VIN",
        vin,
        Netlist::GROUND,
        Waveform::pulse(0.0, 5.0, 2e-9, 1e-11, 1e-11, 5e-9, 10e-9),
    )
    .unwrap();
    nl.add_mosfet(
        "MP",
        out,
        vin,
        vdd,
        vdd,
        MosType::Pmos,
        MosfetParams::pmos_default(),
    )
    .unwrap();
    nl.add_mosfet(
        "MN",
        out,
        vin,
        Netlist::GROUND,
        Netlist::GROUND,
        MosType::Nmos,
        MosfetParams::nmos_default(),
    )
    .unwrap();
    nl.add_capacitor("CL", out, Netlist::GROUND, 100e-15)
        .unwrap();
    nl
}

#[test]
fn step_carry_cuts_rejected_steps_without_flipping_the_answer() {
    let run = |carry: bool| {
        let nl = edgy_inverter();
        let o = SimOptions {
            max_iter: 6,
            tran_step_carry: carry,
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(&nl, o);
        let tr = sim.transient(50e-9, 1e-9).expect("transient");
        let out = nl.find_node("out").unwrap();
        (*sim.stats(), tr.voltage(tr.len() - 1, out))
    };
    let (off, v_off) = run(false);
    let (on, v_on) = run(true);
    assert!(
        off.step_halvings > 0,
        "scenario must actually halve (got {} halvings) or the test is vacuous",
        off.step_halvings
    );
    assert!(
        on.rejected_steps < off.rejected_steps,
        "carry must cut rejected Newton solves: {} (on) vs {} (off)",
        on.rejected_steps,
        off.rejected_steps
    );
    assert!(
        (v_on - v_off).abs() < 1e-2,
        "carry changed the settled output: {v_on} vs {v_off}"
    );
}
