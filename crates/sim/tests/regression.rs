//! Regression tests for solver edge cases: override hygiene on failed
//! sweeps, non-multiple transient grids, NaN-total time lookup, and the
//! telemetry accumulator.

use dotm_netlist::{Netlist, Waveform};
use dotm_sim::{SimOptions, Simulator};

/// A 2 V source over a 1k/1k divider: v(mid) = 1 V.
fn divider() -> Netlist {
    let mut nl = Netlist::new("divider");
    let vin = nl.node("in");
    let mid = nl.node("mid");
    nl.add_vsource("V1", vin, Netlist::GROUND, Waveform::dc(2.0))
        .unwrap();
    nl.add_resistor("R1", vin, mid, 1e3).unwrap();
    nl.add_resistor("R2", mid, Netlist::GROUND, 1e3).unwrap();
    nl
}

#[test]
fn failed_dc_sweep_does_not_leak_override() {
    let nl = divider();
    let mid = nl.find_node("mid").unwrap();
    let mut sim = Simulator::new(&nl);
    // The NaN point cannot converge, so the sweep fails after the first
    // point — and must still clear the override it installed.
    let err = sim.dc_sweep("V1", &[4.0, f64::NAN]);
    assert!(err.is_err(), "NaN sweep point must fail");
    let op = sim.dc_op().expect("post-sweep dc");
    assert!(
        (op.voltage(mid) - 1.0).abs() < 1e-6,
        "override leaked: v(mid) = {} (want 1.0 from the netlist's 2 V)",
        op.voltage(mid)
    );
}

#[test]
fn failed_dc_sweep_restores_preexisting_override() {
    let nl = divider();
    let mid = nl.find_node("mid").unwrap();
    let mut sim = Simulator::new(&nl);
    sim.override_source("V1", 3.0).unwrap();
    let err = sim.dc_sweep("V1", &[4.0, f64::NAN]);
    assert!(err.is_err());
    let op = sim.dc_op().expect("post-sweep dc");
    assert!(
        (op.voltage(mid) - 1.5).abs() < 1e-6,
        "pre-existing override lost: v(mid) = {} (want 1.5 from 3 V)",
        op.voltage(mid)
    );
}

#[test]
fn successful_dc_sweep_still_clears_override() {
    let nl = divider();
    let mid = nl.find_node("mid").unwrap();
    let mut sim = Simulator::new(&nl);
    let ops = sim.dc_sweep("V1", &[0.0, 4.0]).expect("sweep");
    assert_eq!(ops.len(), 2);
    assert!((ops[1].voltage(mid) - 2.0).abs() < 1e-6);
    let op = sim.dc_op().expect("post-sweep dc");
    assert!((op.voltage(mid) - 1.0).abs() < 1e-6);
}

/// An RC so the transient has real dynamics.
fn rc() -> Netlist {
    let mut nl = Netlist::new("rc");
    let vin = nl.node("in");
    let out = nl.node("out");
    nl.add_vsource("V1", vin, Netlist::GROUND, Waveform::dc(1.0))
        .unwrap();
    nl.add_resistor("R1", vin, out, 1e3).unwrap();
    nl.add_capacitor("C1", out, Netlist::GROUND, 1e-12).unwrap();
    nl
}

#[test]
fn transient_grid_reaches_tstop_for_non_multiple_dt() {
    let nl = rc();
    let mut sim = Simulator::new(&nl);
    // 1 ns / 0.3 ns is not an integer ratio: the old grid stopped at
    // 0.9 ns. The final point must now land exactly on tstop.
    let tr = sim.transient(1e-9, 0.3e-9).expect("transient");
    let times = tr.times();
    assert_eq!(times.len(), 5, "0, .3, .6, .9, 1.0 ns");
    assert_eq!(*times.last().unwrap(), 1e-9);
    assert!((times[3] - 0.9e-9).abs() < 1e-24);
}

#[test]
fn transient_grid_unchanged_for_exact_multiple_dt() {
    let nl = rc();
    let mut sim = Simulator::new(&nl);
    let tr = sim.transient(1e-9, 0.25e-9).expect("transient");
    let times = tr.times();
    assert_eq!(times.len(), 5);
    for (k, &t) in times.iter().enumerate() {
        assert_eq!(t, k as f64 * 0.25e-9, "uniform grid must be exactly k·dt");
    }
}

#[test]
fn index_at_is_total_over_nan_queries() {
    let nl = rc();
    let mut sim = Simulator::new(&nl);
    let tr = sim.transient(1e-9, 0.25e-9).expect("transient");
    assert_eq!(tr.index_at(f64::NAN), 0);
    assert_eq!(tr.index_at(0.26e-9), 1);
    assert_eq!(tr.index_at(f64::INFINITY), tr.len() - 1);
    assert_eq!(tr.index_at(f64::NEG_INFINITY), 0);
}

#[test]
fn telemetry_counts_dc_and_transient_work() {
    let nl = divider();
    let mut sim = Simulator::new(&nl);
    sim.dc_op().expect("dc");
    let s = *sim.stats();
    assert_eq!(s.converged_plain, 1, "linear divider solves plainly");
    assert_eq!(s.nr_solves, 1);
    assert!(s.nr_iterations >= 2);
    assert_eq!(s.dc_failures, 0);

    let rc_nl = rc();
    let mut sim = Simulator::new(&rc_nl);
    let tr = sim.transient(1e-9, 0.25e-9).expect("transient");
    let s = *sim.stats();
    assert_eq!(s.tran_steps as usize, tr.len() - 1);
    assert!(s.converged_plain >= 1, "initial DC point recorded");

    // take_stats drains the accumulator.
    let taken = sim.take_stats();
    assert_eq!(taken, s);
    assert!(sim.stats().is_empty());
}

#[test]
fn telemetry_counts_failures() {
    let nl = divider();
    let mut sim = Simulator::with_options(
        &nl,
        SimOptions {
            max_iter: 1, // a single iteration can never satisfy `iter > 0`
            ..SimOptions::default()
        },
    );
    assert!(sim.dc_op().is_err());
    let s = sim.stats();
    assert_eq!(s.dc_failures, 1);
    assert!(s.maxiter_exhausted >= 1);
    assert_eq!(s.converged_plain + s.converged_gmin + s.converged_source, 0);
}
