//! Integration tests checking the simulator against circuits with known
//! analytic solutions.

use dotm_netlist::{DiodeParams, MosType, MosfetParams, Netlist, SwitchParams, Waveform};
use dotm_sim::{Integration, SimOptions, Simulator, VT_THERMAL};

const VDD: f64 = 5.0;

fn supply(nl: &mut Netlist) -> dotm_netlist::NodeId {
    let vdd = nl.node("vdd");
    nl.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(VDD))
        .unwrap();
    vdd
}

#[test]
fn voltage_divider_exact() {
    let mut nl = Netlist::new("div");
    let vdd = supply(&mut nl);
    let mid = nl.node("mid");
    nl.add_resistor("R1", vdd, mid, 3e3).unwrap();
    nl.add_resistor("R2", mid, Netlist::GROUND, 2e3).unwrap();
    let mut sim = Simulator::new(&nl);
    let op = sim.dc_op().unwrap();
    assert!((op.voltage(mid) - VDD * 2.0 / 5.0).abs() < 1e-7);
    // Supply sources I = V/(R1+R2) = 1 mA; SPICE convention: negative.
    let ivdd = op.branch_current(nl.device_id("VDD").unwrap()).unwrap();
    assert!((ivdd + 1e-3).abs() < 1e-7, "ivdd = {ivdd}");
}

#[test]
fn wheatstone_bridge_balanced() {
    let mut nl = Netlist::new("bridge");
    let vdd = supply(&mut nl);
    let l = nl.node("l");
    let r = nl.node("r");
    nl.add_resistor("R1", vdd, l, 1e3).unwrap();
    nl.add_resistor("R2", l, Netlist::GROUND, 2e3).unwrap();
    nl.add_resistor("R3", vdd, r, 2e3).unwrap();
    nl.add_resistor("R4", r, Netlist::GROUND, 4e3).unwrap();
    nl.add_resistor("Rbridge", l, r, 5e3).unwrap();
    let mut sim = Simulator::new(&nl);
    let op = sim.dc_op().unwrap();
    // Balanced bridge: no current through Rbridge, equal mid voltages.
    assert!((op.voltage(l) - op.voltage(r)).abs() < 1e-7);
    assert!((op.voltage(l) - VDD * 2.0 / 3.0).abs() < 1e-7);
}

#[test]
fn current_source_into_resistor() {
    let mut nl = Netlist::new("ir");
    let n = nl.node("n");
    // 1 mA pulled from ground into node n (Isource from gnd to n pushes
    // current into n per the sign convention: positive I flows pos→neg
    // through the source, i.e. out of the circuit at pos, into it at neg).
    nl.add_isource("I1", Netlist::GROUND, n, Waveform::dc(1e-3))
        .unwrap();
    nl.add_resistor("R1", n, Netlist::GROUND, 1e3).unwrap();
    let mut sim = Simulator::new(&nl);
    let op = sim.dc_op().unwrap();
    assert!((op.voltage(n) - 1.0).abs() < 1e-6);
}

#[test]
fn diode_clamp_forward_voltage() {
    let mut nl = Netlist::new("dclamp");
    let vdd = supply(&mut nl);
    let a = nl.node("a");
    nl.add_resistor("R1", vdd, a, 1e3).unwrap();
    nl.add_diode("D1", a, Netlist::GROUND, DiodeParams::default())
        .unwrap();
    let mut sim = Simulator::new(&nl);
    let op = sim.dc_op().unwrap();
    let vd = op.voltage(a);
    // Id = (VDD−vd)/R = Is·(exp(vd/VT)−1) — check self-consistency.
    let id = (VDD - vd) / 1e3;
    let id_model = 1e-14 * ((vd / VT_THERMAL).exp() - 1.0);
    assert!(vd > 0.5 && vd < 0.8, "vd = {vd}");
    assert!((id - id_model).abs() / id < 1e-3);
}

#[test]
fn nmos_saturation_current_matches_level1() {
    let mut nl = Netlist::new("msat");
    let vdd = supply(&mut nl);
    let g = nl.node("g");
    let d = nl.node("d");
    nl.add_vsource("VG", g, Netlist::GROUND, Waveform::dc(2.0))
        .unwrap();
    nl.add_resistor("RD", vdd, d, 1e3).unwrap();
    let p = MosfetParams::nmos_default();
    nl.add_mosfet(
        "M1",
        d,
        g,
        Netlist::GROUND,
        Netlist::GROUND,
        MosType::Nmos,
        p.clone(),
    )
    .unwrap();
    let mut sim = Simulator::new(&nl);
    let op = sim.dc_op().unwrap();
    let vd = op.voltage(d);
    let beta = p.kp * p.w / p.l;
    let vov = 2.0 - p.vt0;
    assert!(vd > vov, "device must sit in saturation, vd = {vd}");
    let ids = 0.5 * beta * vov * vov * (1.0 + p.lambda * vd);
    let ids_kcl = (VDD - vd) / 1e3;
    assert!(
        (ids - ids_kcl).abs() / ids < 1e-6,
        "model {ids} vs kcl {ids_kcl}"
    );
}

#[test]
fn cmos_inverter_vtc_monotone_with_sharp_transition() {
    let mut nl = Netlist::new("inv");
    let vdd = supply(&mut nl);
    let vin = nl.node("in");
    let out = nl.node("out");
    nl.add_vsource("VIN", vin, Netlist::GROUND, Waveform::dc(0.0))
        .unwrap();
    nl.add_mosfet(
        "MP",
        out,
        vin,
        vdd,
        vdd,
        MosType::Pmos,
        MosfetParams::pmos_default(),
    )
    .unwrap();
    nl.add_mosfet(
        "MN",
        out,
        vin,
        Netlist::GROUND,
        Netlist::GROUND,
        MosType::Nmos,
        MosfetParams::nmos_default(),
    )
    .unwrap();
    let mut sim = Simulator::new(&nl);
    let values: Vec<f64> = (0..=50).map(|k| VDD * k as f64 / 50.0).collect();
    let ops = sim.dc_sweep("VIN", &values).unwrap();
    let vout: Vec<f64> = ops.iter().map(|op| op.voltage(out)).collect();
    assert!(vout[0] > VDD - 0.01);
    assert!(vout[50] < 0.01);
    for w in vout.windows(2) {
        assert!(w[1] <= w[0] + 1e-6, "VTC must be monotone: {w:?}");
    }
    // The transition must be sharp: gain region somewhere in the middle.
    let max_drop = vout.windows(2).map(|w| w[0] - w[1]).fold(0.0f64, f64::max);
    assert!(max_drop > 1.0, "inverter gain too low, max step {max_drop}");
}

#[test]
fn nmos_source_follower_level_shift() {
    let mut nl = Netlist::new("sf");
    let vdd = supply(&mut nl);
    let g = nl.node("g");
    let s = nl.node("s");
    nl.add_vsource("VG", g, Netlist::GROUND, Waveform::dc(3.0))
        .unwrap();
    nl.add_mosfet(
        "M1",
        vdd,
        g,
        s,
        Netlist::GROUND,
        MosType::Nmos,
        MosfetParams::nmos_default(),
    )
    .unwrap();
    nl.add_resistor("RS", s, Netlist::GROUND, 10e3).unwrap();
    let mut sim = Simulator::new(&nl);
    let op = sim.dc_op().unwrap();
    let vs = op.voltage(s);
    // Follower output sits roughly Vt (plus body effect) below the gate.
    assert!(vs > 1.0 && vs < 3.0 - 0.7, "vs = {vs}");
}

#[test]
fn nmos_current_mirror_copies_current() {
    let mut nl = Netlist::new("mirror");
    let vdd = supply(&mut nl);
    let gate = nl.node("gate");
    let out = nl.node("out");
    // Reference branch: resistor from VDD into the diode-connected device.
    nl.add_resistor("RREF", vdd, gate, 10e3).unwrap();
    let p = MosfetParams::nmos_default().sized(8e-6, 2e-6);
    nl.add_mosfet(
        "M1",
        gate,
        gate,
        Netlist::GROUND,
        Netlist::GROUND,
        MosType::Nmos,
        p.clone(),
    )
    .unwrap();
    nl.add_mosfet(
        "M2",
        out,
        gate,
        Netlist::GROUND,
        Netlist::GROUND,
        MosType::Nmos,
        p,
    )
    .unwrap();
    nl.add_resistor("ROUT", vdd, out, 1e3).unwrap();
    let mut sim = Simulator::new(&nl);
    let op = sim.dc_op().unwrap();
    let iref = (VDD - op.voltage(gate)) / 10e3;
    let iout = (VDD - op.voltage(out)) / 1e3;
    // Mirror ratio within 15% (channel-length modulation mismatch).
    assert!(
        (iout - iref).abs() / iref < 0.15,
        "iref = {iref}, iout = {iout}"
    );
}

#[test]
fn switch_passes_and_blocks() {
    let mut nl = Netlist::new("sw");
    let vdd = supply(&mut nl);
    let ctl = nl.node("ctl");
    let out = nl.node("out");
    nl.add_vsource("VC", ctl, Netlist::GROUND, Waveform::dc(0.0))
        .unwrap();
    nl.add_switch(
        "S1",
        vdd,
        out,
        ctl,
        Netlist::GROUND,
        SwitchParams {
            v_on: 3.0,
            v_off: 2.0,
            r_on: 100.0,
            r_off: 1e9,
        },
    )
    .unwrap();
    nl.add_resistor("RL", out, Netlist::GROUND, 10e3).unwrap();
    let mut sim = Simulator::new(&nl);
    let ops = sim.dc_sweep("VC", &[0.0, 5.0]).unwrap();
    assert!(ops[0].voltage(out) < 0.01, "switch off leaks");
    assert!(
        ops[1].voltage(out) > VDD * 10e3 / (10e3 + 100.0) - 1e-3,
        "switch on drops too much"
    );
}

#[test]
fn rc_transient_time_constant() {
    let mut nl = Netlist::new("rc");
    let inp = nl.node("in");
    let out = nl.node("out");
    // Step from 0 to 1 V at t = 0 through R = 1k into C = 1µF; τ = 1 ms.
    nl.add_vsource(
        "VIN",
        inp,
        Netlist::GROUND,
        Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, 0.0),
    )
    .unwrap();
    nl.add_resistor("R1", inp, out, 1e3).unwrap();
    nl.add_capacitor("C1", out, Netlist::GROUND, 1e-6).unwrap();
    let mut sim = Simulator::new(&nl);
    let tr = sim.transient(5e-3, 10e-6).unwrap();
    let out_id = out;
    // At t = τ the output must be 1 − e⁻¹ ≈ 0.632.
    let k = tr.index_at(1e-3);
    let v_tau = tr.voltage(k, out_id);
    assert!(
        (v_tau - 0.6321).abs() < 0.01,
        "v(τ) = {v_tau}, expected ≈ 0.632 (BE, dt = τ/100)"
    );
    // At 5τ the output is settled.
    let v_end = tr.voltage(tr.len() - 1, out_id);
    assert!((v_end - 1.0).abs() < 0.01);
}

#[test]
fn rc_transient_trapezoidal_is_more_accurate() {
    let mut nl = Netlist::new("rc");
    let inp = nl.node("in");
    let out = nl.node("out");
    nl.add_vsource(
        "VIN",
        inp,
        Netlist::GROUND,
        Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, 0.0),
    )
    .unwrap();
    nl.add_resistor("R1", inp, out, 1e3).unwrap();
    nl.add_capacitor("C1", out, Netlist::GROUND, 1e-6).unwrap();
    let err = |integ: Integration| {
        let opts = SimOptions {
            integration: integ,
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(&nl, opts);
        let tr = sim.transient(2e-3, 50e-6).unwrap();
        let k = tr.index_at(1e-3);
        (tr.voltage(k, out) - 0.632_120_6).abs()
    };
    let be = err(Integration::BackwardEuler);
    let trap = err(Integration::Trapezoidal);
    assert!(trap < be, "trap err {trap} must beat BE err {be}");
}

#[test]
fn rc_transient_backward_euler_also_converges() {
    let mut nl = Netlist::new("rc");
    let inp = nl.node("in");
    let out = nl.node("out");
    nl.add_vsource(
        "VIN",
        inp,
        Netlist::GROUND,
        Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, 0.0),
    )
    .unwrap();
    nl.add_resistor("R1", inp, out, 1e3).unwrap();
    nl.add_capacitor("C1", out, Netlist::GROUND, 1e-6).unwrap();
    let opts = SimOptions {
        integration: Integration::BackwardEuler,
        ..SimOptions::default()
    };
    let mut sim = Simulator::with_options(&nl, opts);
    let tr = sim.transient(5e-3, 10e-6).unwrap();
    let v_end = tr.voltage(tr.len() - 1, out);
    assert!((v_end - 1.0).abs() < 0.02);
}

#[test]
fn transient_tracks_triangle_through_rc_with_small_tau() {
    let mut nl = Netlist::new("tri");
    let inp = nl.node("in");
    let out = nl.node("out");
    nl.add_vsource(
        "VIN",
        inp,
        Netlist::GROUND,
        Waveform::triangle(0.0, 1.0, 1e-3),
    )
    .unwrap();
    nl.add_resistor("R1", inp, out, 100.0).unwrap();
    nl.add_capacitor("C1", out, Netlist::GROUND, 1e-9).unwrap();
    let mut sim = Simulator::new(&nl);
    let tr = sim.transient(1e-3, 5e-6).unwrap();
    // τ = 100 ns ≪ ramp, so the output tracks the triangle closely.
    let k = tr.index_at(0.5e-3);
    assert!((tr.voltage(k, out) - 1.0).abs() < 0.02);
    let k = tr.index_at(0.25e-3);
    assert!((tr.voltage(k, out) - 0.5).abs() < 0.02);
}

#[test]
fn floating_node_is_handled_by_gmin() {
    let mut nl = Netlist::new("float");
    let vdd = supply(&mut nl);
    let fl = nl.node("floating");
    nl.add_capacitor("C1", fl, vdd, 1e-12).unwrap();
    let mut sim = Simulator::new(&nl);
    // A floating capacitor node must not make the DC solve fail.
    let op = sim.dc_op().unwrap();
    assert!(op.voltage(fl).abs() < 1.0);
}

#[test]
fn short_circuit_fault_pulls_supply_current() {
    // A 0.2 Ω metal short across the supply — the paper's canonical
    // catastrophic fault — must show up as a huge IVdd.
    let mut nl = Netlist::new("shorted");
    let vdd = supply(&mut nl);
    let mid = nl.node("mid");
    nl.add_resistor("R1", vdd, mid, 1e3).unwrap();
    nl.add_resistor("R2", mid, Netlist::GROUND, 1e3).unwrap();
    nl.insert_bridge("FSHORT", vdd, Netlist::GROUND, 0.2, None)
        .unwrap();
    let mut sim = Simulator::new(&nl);
    let op = sim.dc_op().unwrap();
    let ivdd = op.branch_current(nl.device_id("VDD").unwrap()).unwrap();
    assert!(ivdd.abs() > 20.0, "short must draw >20 A, got {ivdd}");
}

#[test]
fn open_fault_floats_downstream_node() {
    let mut nl = Netlist::new("open");
    let vdd = supply(&mut nl);
    let mid = nl.node("mid");
    nl.add_resistor("R1", vdd, mid, 1e3).unwrap();
    nl.add_resistor("R2", mid, Netlist::GROUND, 1e3).unwrap();
    let r2 = nl.device_id("R2").unwrap();
    nl.split_node(
        mid,
        &[dotm_netlist::TerminalRef {
            device: r2,
            terminal: 0,
        }],
    )
    .unwrap();
    let mut sim = Simulator::new(&nl);
    let op = sim.dc_op().unwrap();
    // With R2 cut off, no current flows: mid sits at VDD.
    assert!((op.voltage(mid) - VDD).abs() < 1e-3);
}

#[test]
fn dc_sweep_continuation_is_consistent_with_fresh_solves() {
    let mut nl = Netlist::new("inv2");
    let vdd = supply(&mut nl);
    let vin = nl.node("in");
    let out = nl.node("out");
    nl.add_vsource("VIN", vin, Netlist::GROUND, Waveform::dc(0.0))
        .unwrap();
    nl.add_mosfet(
        "MP",
        out,
        vin,
        vdd,
        vdd,
        MosType::Pmos,
        MosfetParams::pmos_default(),
    )
    .unwrap();
    nl.add_mosfet(
        "MN",
        out,
        vin,
        Netlist::GROUND,
        Netlist::GROUND,
        MosType::Nmos,
        MosfetParams::nmos_default(),
    )
    .unwrap();
    let mut sim = Simulator::new(&nl);
    let swept = sim.dc_sweep("VIN", &[1.0, 2.0, 3.0]).unwrap();
    for (v, op_swept) in [1.0, 2.0, 3.0].iter().zip(&swept) {
        sim.override_source("VIN", *v).unwrap();
        let fresh = sim.dc_op().unwrap();
        sim.clear_override("VIN");
        assert!(
            (fresh.voltage(out) - op_swept.voltage(out)).abs() < 1e-4,
            "sweep/fresh mismatch at VIN = {v}"
        );
    }
}

#[test]
fn mosfet_junction_leakage_appears_in_supply_current() {
    // Reverse-biased junction with huge Is models the paper's leaky
    // flipflop; IVdd must scale with the leak.
    let build = |is_leak: f64| {
        let mut nl = Netlist::new("leak");
        let vdd = supply(&mut nl);
        let mut p = MosfetParams::nmos_default();
        p.is_leak = is_leak;
        // Off transistor with drain at VDD: bulk-drain junction leaks.
        nl.add_mosfet(
            "M1",
            vdd,
            Netlist::GROUND,
            Netlist::GROUND,
            Netlist::GROUND,
            MosType::Nmos,
            p,
        )
        .unwrap();
        nl
    };
    let nl_small = build(1e-15);
    let nl_big = build(1e-9);
    let i_small = {
        let mut sim = Simulator::new(&nl_small);
        let op = sim.dc_op().unwrap();
        op.branch_current(nl_small.device_id("VDD").unwrap())
            .unwrap()
            .abs()
    };
    let i_big = {
        let mut sim = Simulator::new(&nl_big);
        let op = sim.dc_op().unwrap();
        op.branch_current(nl_big.device_id("VDD").unwrap())
            .unwrap()
            .abs()
    };
    assert!(
        i_big > 100.0 * i_small,
        "i_big = {i_big}, i_small = {i_small}"
    );
}

#[test]
fn spice_deck_round_trips_through_the_simulator() {
    // The netlist crate's SPICE parser feeds the simulator directly.
    let deck = "\
diode clamp
V1 in 0 DC 5
R1 in a 1k
D1 a 0 IS=1e-14
M1 out a 0 0 NMOS W=10u L=2u
RL vdd2 out 10k
V2 vdd2 0 DC 5
";
    let nl = dotm_netlist::parse_spice(deck).expect("deck parses");
    let mut sim = Simulator::new(&nl);
    let op = sim.dc_op().expect("parsed deck simulates");
    let va = op.voltage(nl.find_node("a").unwrap());
    assert!(va > 0.5 && va < 0.8, "diode clamp at {va}");
    // M1's gate sits at the diode voltage (< Vt): it is off, out pulled up.
    let vout = op.voltage(nl.find_node("out").unwrap());
    assert!(vout > 4.5, "out = {vout}");
}

#[test]
fn tran_result_accessors_and_index_lookup() {
    let mut nl = Netlist::new("rc");
    let inp = nl.node("in");
    let out = nl.node("out");
    nl.add_vsource(
        "VIN",
        inp,
        Netlist::GROUND,
        Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, 0.0),
    )
    .unwrap();
    nl.add_resistor("R1", inp, out, 1e3).unwrap();
    nl.add_capacitor("C1", out, Netlist::GROUND, 1e-9).unwrap();
    let mut sim = Simulator::new(&nl);
    let tr = sim.transient(1e-6, 10e-9).unwrap();
    assert_eq!(tr.len(), 101);
    assert!(!tr.is_empty());
    assert_eq!(tr.times()[0], 0.0);
    // index_at clamps to the grid ends and rounds to the nearest point.
    assert_eq!(tr.index_at(-1.0), 0);
    assert_eq!(tr.index_at(10.0), 100);
    assert_eq!(tr.index_at(54e-9), 5);
    assert_eq!(tr.index_at(56e-9), 6);
    // Ground is always zero.
    assert_eq!(tr.voltage(50, Netlist::GROUND), 0.0);
    // series matches per-step voltage.
    let series = tr.series(out);
    assert_eq!(series.len(), tr.len());
    assert_eq!(series[40], tr.voltage(40, out));
    // branch current series exists for the source and not for a resistor.
    let vid = nl.device_id("VIN").unwrap();
    let rid = nl.device_id("R1").unwrap();
    assert!(tr.branch_series(vid).is_some());
    assert!(tr.branch_series(rid).is_none());
    // op_at snapshots agree with the series.
    let op = tr.op_at(40);
    assert_eq!(op.voltage(out), series[40]);
    assert_eq!(op.branch_current(rid), None);
}

#[test]
fn device_currents_report_terminal_flows() {
    let mut nl = Netlist::new("dc");
    let vdd = supply(&mut nl);
    let mid = nl.node("mid");
    nl.add_resistor("R1", vdd, mid, 1e3).unwrap();
    nl.add_resistor("R2", mid, Netlist::GROUND, 1e3).unwrap();
    let mut sim = Simulator::new(&nl);
    let op = sim.dc_op().unwrap();
    let i_r1 = sim.device_currents(&op, "R1").unwrap();
    // 2.5 mA into terminal a, out of terminal b.
    assert!((i_r1[0] - 2.5e-3).abs() < 1e-6);
    assert!((i_r1[0] + i_r1[1]).abs() < 1e-12);
    let i_vdd = sim.device_currents(&op, "VDD").unwrap();
    assert!((i_vdd[0] + 2.5e-3).abs() < 1e-6, "supply sources current");
    assert!(sim.device_currents(&op, "nope").is_none());
}

#[test]
fn override_source_affects_transient_too() {
    let mut nl = Netlist::new("ov");
    let a = nl.node("a");
    nl.add_vsource("V1", a, Netlist::GROUND, Waveform::triangle(0.0, 5.0, 1e-6))
        .unwrap();
    nl.add_resistor("R1", a, Netlist::GROUND, 1e3).unwrap();
    let mut sim = Simulator::new(&nl);
    sim.override_source("V1", 2.0).unwrap();
    let tr = sim.transient(1e-6, 50e-9).unwrap();
    for k in 0..tr.len() {
        assert!(
            (tr.voltage(k, a) - 2.0).abs() < 1e-6,
            "override must pin the source"
        );
    }
    sim.clear_override("V1");
    let tr = sim.transient(1e-6, 50e-9).unwrap();
    let mid = tr.voltage(tr.index_at(0.5e-6), a);
    assert!(
        mid > 4.5,
        "triangle must be back after clearing the override"
    );
}
