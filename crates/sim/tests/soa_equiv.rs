//! Lockstep-variant equivalence: a first Newton iteration primed by the
//! blocked SoA pre-pass (`lockstep_capture` → `prime_lanes` →
//! `install_lane_prime`) must be bitwise-identical to the untouched
//! scalar assemble + factor path — solution voltages *and* the whole
//! solver-stats trajectory — and every divergence must fall back to the
//! scalar path rather than perturb a single bit. That identity is why
//! `DOTM_VARIANT_LOCKSTEP` can default on.

use dotm_netlist::{DiodeParams, MosType, MosfetParams, Netlist, NodeId, Waveform};
use dotm_sim::soa::prime_lanes;
use dotm_sim::{LanePrime, SimOptions, SimStats, Simulator};
use std::sync::Arc;

/// A small nonlinear bench: CMOS inverter with a resistive divider load,
/// enough nonlinearity for a few Newton iterations without escalation.
fn base_bench() -> Netlist {
    let mut nl = Netlist::new("soa_bench");
    let vdd = nl.node("vdd");
    let vin = nl.node("in");
    let out = nl.node("out");
    let mid = nl.node("mid");
    nl.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(5.0))
        .unwrap();
    nl.add_vsource("VIN", vin, Netlist::GROUND, Waveform::dc(2.3))
        .unwrap();
    nl.add_mosfet(
        "MP",
        out,
        vin,
        vdd,
        vdd,
        MosType::Pmos,
        MosfetParams::pmos_default(),
    )
    .unwrap();
    nl.add_mosfet(
        "MN",
        out,
        vin,
        Netlist::GROUND,
        Netlist::GROUND,
        MosType::Nmos,
        MosfetParams::nmos_default(),
    )
    .unwrap();
    nl.add_resistor("RM", vdd, mid, 5e3).unwrap();
    nl.add_resistor("RL", mid, Netlist::GROUND, 15e3).unwrap();
    nl.add_resistor("RO", out, mid, 50e3).unwrap();
    nl
}

/// Append-only bridge variants of the base bench — the shape one fault
/// class's severity/variant lanes take in the campaign.
fn bridge_variants() -> Vec<Netlist> {
    [470.0, 2.2e3, 68e3]
        .iter()
        .map(|&r| {
            let mut nl = base_bench();
            let out = nl.find_node("out").unwrap();
            let mid = nl.find_node("mid").unwrap();
            nl.add_resistor("FBRG", out, mid, r).unwrap();
            nl
        })
        .collect()
}

/// DC-solves `nl`, optionally adopting `prime` on the first iteration.
/// Returns every node voltage's bits plus the full solver telemetry —
/// identical trajectories imply identical counters, so the stats struct
/// is compared whole.
fn run_dc(nl: &Netlist, prime: Option<&Arc<LanePrime>>) -> (Vec<u64>, SimStats) {
    let mut sim = Simulator::new(nl);
    if let Some(p) = prime {
        sim.install_lane_prime(Arc::clone(p));
    }
    let op = sim.dc_op().expect("dc");
    let bits = (1..nl.node_count())
        .map(|i| op.voltage(NodeId::from_index(i)).to_bits())
        .collect();
    (bits, *sim.stats())
}

/// Captures each variant's first-iteration system on a scratch simulator
/// and factors all lanes through the blocked kernel.
fn primes_for(variants: &[Netlist]) -> Vec<Option<Arc<LanePrime>>> {
    let systems = variants
        .iter()
        .map(|nl| Simulator::new(nl).lockstep_capture())
        .collect();
    prime_lanes(systems)
}

/// Counter snapshot helper: total adopted primes so far.
fn prime_hits() -> u64 {
    dotm_obs::counters_snapshot()
        .iter()
        .find(|(n, _)| n == "lockstep.prime_hits")
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

#[test]
fn primed_dc_bitwise_identical_per_variant() {
    dotm_obs::set_enabled(true);
    let variants = bridge_variants();
    let primes = primes_for(&variants);
    assert!(primes.iter().all(Option::is_some), "every lane must prime");
    let before = prime_hits();
    for (nl, prime) in variants.iter().zip(&primes) {
        let (scalar_bits, scalar_stats) = run_dc(nl, None);
        let (primed_bits, primed_stats) = run_dc(nl, prime.as_ref());
        assert_eq!(scalar_bits, primed_bits, "adoption changed solution bits");
        // Adoption must be invisible in the stats: same solves, same
        // iterations, no counter anywhere may move.
        assert_eq!(scalar_stats, primed_stats, "adoption changed the stats");
    }
    assert_eq!(
        prime_hits() - before,
        variants.len() as u64,
        "every primed run must actually adopt its lane"
    );
}

#[test]
fn adoption_survives_gmin_escalation_bitwise() {
    // A diode-loaded variant under an iteration budget plain Newton
    // cannot meet from zeros: the solve falls into the gmin homotopy
    // *after* iteration 0 adopted the prime. Escalation re-assembles at
    // other gmins through the scalar path (the prime is one-shot and
    // already spent) — the trajectory must still match the unprimed run
    // bit for bit. Capture and measurement share the same options, as
    // they do in the campaign.
    let mut nl = base_bench();
    let out = nl.find_node("out").unwrap();
    let mid = nl.find_node("mid").unwrap();
    nl.add_diode("FD1", out, mid, DiodeParams { is: 1e-16, n: 0.8 })
        .unwrap();
    nl.add_diode("FD2", mid, out, DiodeParams { is: 1e-16, n: 0.8 })
        .unwrap();
    nl.add_resistor("FBR", out, mid, 120.0).unwrap();
    let opts = SimOptions {
        max_iter: 5,
        ..SimOptions::default()
    };
    let systems = vec![Simulator::with_options(&nl, opts.clone()).lockstep_capture()];
    let primes = prime_lanes(systems);
    let prime = primes[0].as_ref().expect("capture must prime");
    let run = |prime: Option<&Arc<LanePrime>>| {
        let mut sim = Simulator::with_options(&nl, opts.clone());
        if let Some(p) = prime {
            sim.install_lane_prime(Arc::clone(p));
        }
        let op = sim.dc_op().expect("dc");
        let bits: Vec<u64> = (1..nl.node_count())
            .map(|i| op.voltage(NodeId::from_index(i)).to_bits())
            .collect();
        (bits, *sim.stats())
    };
    let (scalar_bits, scalar_stats) = run(None);
    let (primed_bits, primed_stats) = run(Some(prime));
    assert_eq!(scalar_bits, primed_bits);
    assert_eq!(scalar_stats, primed_stats);
    assert!(
        scalar_stats.converged_gmin + scalar_stats.converged_source > 0,
        "bench was meant to exercise escalation (stats: {scalar_stats:?})"
    );
}

#[test]
fn diverging_lane_falls_back_to_scalar_bitwise() {
    dotm_obs::set_enabled(true);
    // The capture ran from the zero iterate, but the measuring solve
    // starts from a warm seed: x0 differs bitwise, the guard refuses the
    // prime, and the scalar path must produce an untouched result.
    let variants = bridge_variants();
    let primes = primes_for(&variants);
    let nl = &variants[0];
    let nominal = base_bench();
    let seed_op = {
        let mut sim = Simulator::new(&nominal);
        sim.dc_op().expect("nominal dc")
    };
    let run_seeded = |prime: Option<&Arc<LanePrime>>| {
        let mut sim = Simulator::new(nl);
        assert!(sim.seed_dc_from(&seed_op), "append-only seed must map");
        if let Some(p) = prime {
            sim.install_lane_prime(Arc::clone(p));
        }
        let op = sim.dc_op().expect("dc");
        let bits: Vec<u64> = (1..nl.node_count())
            .map(|i| op.voltage(NodeId::from_index(i)).to_bits())
            .collect();
        (bits, *sim.stats())
    };
    let before = prime_hits();
    let (scalar_bits, scalar_stats) = run_seeded(None);
    let (primed_bits, primed_stats) = run_seeded(primes[0].as_ref());
    assert_eq!(scalar_bits, primed_bits, "refused prime changed bits");
    assert_eq!(scalar_stats, primed_stats);
    assert_eq!(prime_hits(), before, "a diverged lane must never adopt");
}

#[test]
fn rewired_variants_group_by_dimension_and_still_prime() {
    dotm_obs::set_enabled(true);
    // One append-only bridge plus one rewired variant that adds a new
    // node (different unknown count): `prime_lanes` must factor them in
    // separate dimension groups and both must still adopt bitwise.
    let mut rewired = base_bench();
    {
        let out = rewired.find_node("out").unwrap();
        let tap = rewired.node("fault_tap");
        rewired.add_resistor("FB1", out, tap, 1e3).unwrap();
        rewired
            .add_resistor("FB2", tap, Netlist::GROUND, 3.3e3)
            .unwrap();
    }
    let variants = vec![bridge_variants().remove(0), rewired];
    assert_ne!(
        variants[0].node_count(),
        variants[1].node_count(),
        "variants were meant to differ in dimension"
    );
    let primes = primes_for(&variants);
    let before = prime_hits();
    for (nl, prime) in variants.iter().zip(&primes) {
        let prime = prime.as_ref().expect("both dimension groups must prime");
        let (scalar_bits, scalar_stats) = run_dc(nl, None);
        let (primed_bits, primed_stats) = run_dc(nl, Some(prime));
        assert_eq!(scalar_bits, primed_bits);
        assert_eq!(scalar_stats, primed_stats);
    }
    assert_eq!(prime_hits() - before, 2);
}

#[test]
fn single_lane_class_primes_bitwise() {
    dotm_obs::set_enabled(true);
    // K = 1: a class with one measurable variant still goes through the
    // blocked kernel (as a singleton group) and adopts bitwise.
    let nl = bridge_variants().remove(1);
    let primes = primes_for(std::slice::from_ref(&nl));
    let prime = primes[0].as_ref().expect("singleton lane must prime");
    let before = prime_hits();
    let (scalar_bits, scalar_stats) = run_dc(&nl, None);
    let (primed_bits, primed_stats) = run_dc(&nl, Some(prime));
    assert_eq!(scalar_bits, primed_bits);
    assert_eq!(scalar_stats, primed_stats);
    assert_eq!(prime_hits() - before, 1);
}
