//! Batched-assembly equivalence: the split-plan path (`batch_assembly`),
//! with and without a class-shared nominal baseline, must be
//! bitwise-identical to the scalar interpretive re-walk — that identity
//! is why `DOTM_BATCH_ASSEMBLY` can default on.

use dotm_netlist::{DiodeParams, MosType, MosfetParams, Netlist, NodeId, SwitchParams, Waveform};
use dotm_sim::{SharedAssembly, SimOptions, SimStats, Simulator};
use std::sync::Arc;

/// A testbench exercising every device stamp: CMOS inverter (MOSFETs with
/// junction diodes and parasitic caps), resistor ladder with two
/// MOSFET-free internal nodes (purely static cells), diode, switch, and
/// an explicit load capacitor, driven by a DC rail and a pulse input.
fn mixed_bench() -> Netlist {
    let mut nl = Netlist::new("mixed_bench");
    let vdd = nl.node("vdd");
    let vin = nl.node("in");
    let out = nl.node("out");
    let mid = nl.node("mid");
    let na = nl.node("na");
    let nb = nl.node("nb");
    nl.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(5.0))
        .unwrap();
    nl.add_vsource(
        "VIN",
        vin,
        Netlist::GROUND,
        Waveform::pulse(0.0, 5.0, 1e-9, 1e-10, 1e-10, 4e-9, 8e-9),
    )
    .unwrap();
    nl.add_mosfet(
        "MP",
        out,
        vin,
        vdd,
        vdd,
        MosType::Pmos,
        MosfetParams::pmos_default(),
    )
    .unwrap();
    nl.add_mosfet(
        "MN",
        out,
        vin,
        Netlist::GROUND,
        Netlist::GROUND,
        MosType::Nmos,
        MosfetParams::nmos_default(),
    )
    .unwrap();
    nl.add_capacitor("CL", out, Netlist::GROUND, 50e-15)
        .unwrap();
    // Resistor ladder vdd → na → nb → gnd: na/nb cells stay static.
    nl.add_resistor("RA", vdd, na, 10e3).unwrap();
    nl.add_resistor("RB", na, nb, 10e3).unwrap();
    nl.add_resistor("RC", nb, Netlist::GROUND, 10e3).unwrap();
    nl.add_resistor("RM", vdd, mid, 5e3).unwrap();
    nl.add_diode("D1", mid, Netlist::GROUND, DiodeParams::default())
        .unwrap();
    nl.add_switch(
        "S1",
        mid,
        out,
        vin,
        Netlist::GROUND,
        SwitchParams::default(),
    )
    .unwrap();
    nl
}

fn opts(batch: bool) -> SimOptions {
    SimOptions {
        batch_assembly: batch,
        ..SimOptions::default()
    }
}

/// Runs DC + transient and returns every solution value's bits plus the
/// solver telemetry (identical trajectories ⇒ identical counters).
fn run_bits(
    nl: &Netlist,
    o: SimOptions,
    shared: Option<&Arc<SharedAssembly>>,
) -> (Vec<u64>, SimStats) {
    let mut sim = Simulator::with_options(nl, o);
    if let Some(sh) = shared {
        sim.install_shared_assembly(Arc::clone(sh));
    }
    let nodes: Vec<NodeId> = (1..nl.node_count()).map(NodeId::from_index).collect();
    let mut bits = Vec::new();
    let op = sim.dc_op().expect("dc");
    for &node in &nodes {
        bits.push(op.voltage(node).to_bits());
    }
    let tr = sim.transient(20e-9, 0.5e-9).expect("tran");
    for &node in &nodes {
        for v in tr.series(node) {
            bits.push(v.to_bits());
        }
    }
    (bits, *sim.stats())
}

#[test]
fn batch_dc_and_transient_bitwise_identical_to_scalar() {
    let nl = mixed_bench();
    let (scalar, s_stats) = run_bits(&nl, opts(false), None);
    let (batched, b_stats) = run_bits(&nl, opts(true), None);
    assert_eq!(scalar, batched, "batched assembly changed solution bits");
    assert_eq!(
        (
            s_stats.nr_iterations,
            s_stats.tran_steps,
            s_stats.rejected_steps
        ),
        (
            b_stats.nr_iterations,
            b_stats.tran_steps,
            b_stats.rejected_steps
        ),
        "batched assembly changed the solver trajectory"
    );
}

#[test]
fn shared_baseline_adoption_bitwise_identical() {
    let base = mixed_bench();
    let shared = Arc::new(SharedAssembly::compile(&base));

    // Append-only variant exercising all three shared-path mechanisms:
    // a bridge through a *new* node (branch rows shift; appended static
    // delta ops), a capacitor across the previously static ladder cells
    // (demotes them back to per-iteration replay), and a plain bridge
    // resistor between existing nodes.
    let mut variant = base.clone();
    let vdd = variant.find_node("vdd").unwrap();
    let na = variant.find_node("na").unwrap();
    let nb = variant.find_node("nb").unwrap();
    let mid = variant.find_node("mid").unwrap();
    let brg = variant.node("fault_bridge");
    variant.add_resistor("FB1", vdd, brg, 2e3).unwrap();
    variant
        .add_resistor("FB2", brg, Netlist::GROUND, 7e3)
        .unwrap();
    variant.add_capacitor("FC1", na, nb, 1e-12).unwrap();
    variant.add_resistor("FB3", nb, mid, 50e3).unwrap();

    let (scalar, _) = run_bits(&variant, opts(false), None);
    let (local, _) = run_bits(&variant, opts(true), None);
    let (adopted, _) = run_bits(&variant, opts(true), Some(&shared));
    assert_eq!(scalar, local, "local split changed solution bits");
    assert_eq!(
        scalar, adopted,
        "shared-baseline embed changed solution bits"
    );
}

#[test]
fn incompatible_variant_falls_back_bitwise_identical() {
    let base = mixed_bench();
    let shared = Arc::new(SharedAssembly::compile(&base));

    // A Monte-Carlo-style corner: same topology, perturbed resistor (the
    // remove/re-add reorders device ids). The device prefix check fails,
    // so the simulator must fall back to its local split — and still
    // match the scalar path.
    let corner = {
        let mut nl = mixed_bench();
        let vdd = nl.find_node("vdd").unwrap();
        let na = nl.find_node("na").unwrap();
        nl.remove_device("RA").unwrap();
        nl.add_resistor("RA2", vdd, na, 10.7e3).unwrap();
        nl
    };

    let (scalar, _) = run_bits(&corner, opts(false), None);
    let (batched, _) = run_bits(&corner, opts(true), Some(&shared));
    assert_eq!(scalar, batched, "fallback path changed solution bits");
}

#[test]
fn shared_adoption_matches_across_gmin_escalation() {
    // The gmin homotopy ladder revisits several gmin values; each keys its
    // own shared baseline. A hard-to-converge variant (extra diode string)
    // forces the ladder and must still match the scalar path bitwise.
    let base = mixed_bench();
    let shared = Arc::new(SharedAssembly::compile(&base));
    let mut variant = base.clone();
    let mid = variant.find_node("mid").unwrap();
    let out = variant.find_node("out").unwrap();
    variant
        .add_diode("FD1", out, mid, DiodeParams { is: 1e-16, n: 0.8 })
        .unwrap();
    variant.add_resistor("FBR", out, mid, 120.0).unwrap();

    let (scalar, _) = run_bits(&variant, opts(false), None);
    let (adopted, _) = run_bits(&variant, opts(true), Some(&shared));
    assert_eq!(scalar, adopted);
}
