//! The simulation engine: MNA assembly and the Newton–Raphson solver with
//! gmin- and source-stepping homotopies.

use crate::batch::{self, BatchState, SharedAssembly};
use crate::error::SimError;
use crate::factor::{NominalFactors, SmwOutcome, SmwPlan};
use crate::matrix::{DenseMatrix, LuFactors};
use crate::models::{diode_eval, mosfet_eval, switch_eval};
use crate::soa::{LanePrime, LaneSystem};
use crate::stats::SimStats;
use dotm_netlist::{Device, DeviceId, DeviceKind, DiodeParams, Netlist, NodeId, Waveform};
use std::collections::HashMap;
use std::sync::Arc;

/// Numerical integration method for transient analysis.
///
/// Backward Euler is the default: the methodology reads *quiescent branch
/// currents* out of stiff switched circuits, and the trapezoidal rule's
/// undamped ringing pollutes exactly those currents. Trapezoidal remains
/// available where waveform accuracy matters more.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integration {
    /// First-order implicit Euler: very robust, numerically dissipative.
    BackwardEuler,
    /// Second-order trapezoidal rule; BE is still used for the first step.
    Trapezoidal,
}

/// Simulator tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Absolute voltage convergence tolerance (V).
    pub abstol_v: f64,
    /// Absolute current convergence tolerance (A) for source branches.
    pub abstol_i: f64,
    /// Relative convergence tolerance.
    pub reltol: f64,
    /// Maximum Newton–Raphson iterations per solve.
    pub max_iter: usize,
    /// Minimum conductance from every node to ground (S).
    pub gmin: f64,
    /// Per-iteration clamp on node-voltage updates (V).
    pub v_step_limit: f64,
    /// Transient integration method.
    pub integration: Integration,
    /// Maximum number of timestep halvings when a transient step fails.
    pub max_step_halvings: u32,
    /// Reuse the LU factorisation when consecutive Newton solves assemble
    /// a bit-identical matrix (linear circuits, repeated sweep points,
    /// homotopy plateaus). Bitwise invisible in every solution — the
    /// reused factors are of the *same* matrix — so this defaults on and
    /// only the occupancy counters betray it.
    pub factor_reuse: bool,
    /// Solve fault-variant systems as rank-k updates of installed
    /// nominal factors (see [`crate::NominalFactors`]). Changes solution
    /// ULPs relative to a fresh factorisation, so it defaults off and is
    /// gated end-to-end by verdict-equality checks in the bench harness.
    pub rank_update: bool,
    /// Assemble through the split stamp plan: constant stamps are summed
    /// once into a gmin-keyed baseline and every iteration replays only
    /// the x-dependent ops (see [`crate::SharedAssembly`]). The per-cell
    /// addition order is preserved exactly, so the assembled matrix is
    /// bit-identical to the interpretive walk and this defaults on.
    pub batch_assembly: bool,
    /// Carry the accepted transient step size across the step loop with a
    /// ×2 ramp-up instead of restarting every step at the full remaining
    /// interval. Avoids paying repeated rejected Newton solves on sharp
    /// edges, but takes different (smaller) steps — round-off-changing,
    /// so it defaults off and is verdict-gated like `rank_update`.
    pub tran_step_carry: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            abstol_v: 1e-6,
            abstol_i: 1e-9,
            reltol: 1e-4,
            max_iter: 150,
            gmin: 1e-12,
            v_step_limit: 1.0,
            integration: Integration::BackwardEuler,
            max_step_halvings: 10,
            factor_reuse: true,
            rank_update: false,
            batch_assembly: true,
            tran_step_carry: false,
        }
    }
}

/// A solved operating point.
///
/// Obtained from [`Simulator::dc_op`] (or a transient snapshot); query it
/// with [`OpPoint::voltage`] and [`OpPoint::branch_current`].
#[derive(Debug, Clone)]
pub struct OpPoint {
    pub(crate) x: Vec<f64>,
    pub(crate) n_nodes: usize,
    pub(crate) vsrc: Vec<DeviceId>,
}

impl OpPoint {
    /// Voltage of `node` relative to ground.
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.x[node.index() - 1]
        }
    }

    /// Current through an independent voltage source, flowing from its
    /// positive terminal through the source to its negative terminal
    /// (SPICE convention: a supply sourcing current reads negative).
    ///
    /// Returns `None` if `id` is not a voltage source.
    pub fn branch_current(&self, id: DeviceId) -> Option<f64> {
        let k = self.vsrc.iter().position(|&d| d == id)?;
        Some(self.x[self.n_nodes - 1 + k])
    }
}

/// A companion-model capacitor instance used during transient analysis.
#[derive(Debug, Clone, Copy)]
struct CapInst {
    a: NodeId,
    b: NodeId,
    c: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct CapState {
    v: f64,
    i: f64,
}

struct TranCtx<'c> {
    caps: &'c [CapInst],
    states: &'c [CapState],
    h: f64,
    /// true on steps integrated with trapezoidal rule
    trap: bool,
}

/// Result of a transient analysis: node voltages and source branch currents
/// on a uniform output time grid.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
    n_nodes: usize,
    vsrc: Vec<DeviceId>,
}

impl TranResult {
    /// The output time grid.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of stored time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the result holds no time points.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage of `node` at time index `step`.
    pub fn voltage(&self, step: usize, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.states[step][node.index() - 1]
        }
    }

    /// The full voltage waveform of `node`.
    pub fn series(&self, node: NodeId) -> Vec<f64> {
        (0..self.len()).map(|k| self.voltage(k, node)).collect()
    }

    /// Branch current of voltage source `id` at time index `step`
    /// (see [`OpPoint::branch_current`] for sign convention).
    pub fn branch_current(&self, step: usize, id: DeviceId) -> Option<f64> {
        let k = self.vsrc.iter().position(|&d| d == id)?;
        Some(self.states[step][self.n_nodes - 1 + k])
    }

    /// The full branch-current waveform of voltage source `id`.
    pub fn branch_series(&self, id: DeviceId) -> Option<Vec<f64>> {
        let k = self.vsrc.iter().position(|&d| d == id)?;
        Some(
            (0..self.len())
                .map(|s| self.states[s][self.n_nodes - 1 + k])
                .collect(),
        )
    }

    /// Index of the stored point closest to time `t`.
    ///
    /// The lookup is total: a NaN query time maps to index 0 (the initial
    /// condition) rather than panicking — a faulty-circuit measurement
    /// chain can produce NaN probe times, and blaming the stored grid
    /// (which is finite by construction) would point at the wrong side.
    pub fn index_at(&self, t: f64) -> usize {
        if t.is_nan() {
            return 0;
        }
        match self.times.binary_search_by(|probe| probe.total_cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) if i >= self.times.len() => self.times.len() - 1,
            Err(i) => {
                if (self.times[i] - t).abs() < (t - self.times[i - 1]).abs() {
                    i
                } else {
                    i - 1
                }
            }
        }
    }

    /// Snapshot of time index `step` as an [`OpPoint`].
    pub fn op_at(&self, step: usize) -> OpPoint {
        OpPoint {
            x: self.states[step].clone(),
            n_nodes: self.n_nodes,
            vsrc: self.vsrc.clone(),
        }
    }
}

enum NrOutcome {
    Converged,
    MaxIter,
    Singular,
}

/// One step of the compiled stamp plan.
///
/// The netlist is immutable for the life of a [`Simulator`], so the
/// structure of the MNA system — which cells each device touches, and
/// the *values* of every x-independent stamp — is compiled once and
/// replayed on every assembly. The ops are emitted in exact device-walk
/// order with the same per-cell additions the interpretive walk
/// performed, so a replayed assembly is bit-identical to the original;
/// only the per-device dispatch, row lookups and constant arithmetic are
/// hoisted out of the Newton loop.
pub(crate) enum PlanOp<'a> {
    /// A constant matrix stamp: `A[r][c] += v`.
    MatAdd { r: usize, c: usize, v: f64 },
    /// Voltage-source RHS assignment: `z[row] = value(id) · src_scale`.
    VsrcZ {
        row: usize,
        id: DeviceId,
        wf: &'a Waveform,
    },
    /// Current-source RHS stamp: `z[rp] -= i`, `z[rq] += i`.
    IsrcZ {
        rp: Option<usize>,
        rq: Option<usize>,
        id: DeviceId,
        wf: &'a Waveform,
    },
    /// An x-dependent device, re-linearised every iteration.
    Nonlinear(&'a Device),
}

/// A circuit simulator bound to a netlist.
///
/// Compiles the netlist's node/source structure once; every analysis
/// (operating point, DC sweep, transient) reuses the compiled structure and
/// the scratch matrix.
///
/// ```
/// use dotm_netlist::{Netlist, Waveform};
/// use dotm_sim::Simulator;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("divider");
/// let vin = nl.node("in");
/// let mid = nl.node("mid");
/// nl.add_vsource("V1", vin, Netlist::GROUND, Waveform::dc(2.0))?;
/// nl.add_resistor("R1", vin, mid, 1e3)?;
/// nl.add_resistor("R2", mid, Netlist::GROUND, 1e3)?;
/// let mut sim = Simulator::new(&nl);
/// let op = sim.dc_op()?;
/// assert!((op.voltage(mid) - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub struct Simulator<'a> {
    nl: &'a Netlist,
    opts: SimOptions,
    n_nodes: usize,
    vsrc: Vec<DeviceId>,
    vsrc_row: HashMap<u32, usize>,
    n_unknowns: usize,
    source_override: HashMap<u32, f64>,
    a: DenseMatrix,
    z: Vec<f64>,
    stats: SimStats,
    /// `true` if the netlist contains any device whose stamps depend on
    /// the solution vector (diode, MOSFET, switch). For a purely linear
    /// circuit the assembled system is independent of `x`, so Newton may
    /// accept a first-iteration convergence without a confirming solve.
    has_nonlinear: bool,
    /// One-shot warm-start guess consumed by the next [`robust_dc`] call
    /// (installed by [`Simulator::seed_dc_from`]).
    dc_seed: Option<Vec<f64>>,
    /// The most recent successfully solved DC operating point (also the
    /// transient initial point), kept for warm-start capture.
    last_dc: Option<Vec<f64>>,
    /// Compiled stamp plan, built lazily on the first assembly.
    plan: Option<Vec<PlanOp<'a>>>,
    /// LU factors of the most recently assembled matrix.
    lu: LuFactors,
    /// Exact factor-cache key: the raw entries of the matrix `lu` was
    /// factored from. Valid only when `factor_fresh` is set.
    factor_key: Vec<f64>,
    factor_fresh: bool,
    /// Nominal-circuit factors for the rank-update path, installed by
    /// the warm-start machinery via [`Simulator::install_nominal_factors`].
    nominal: Option<Arc<NominalFactors>>,
    /// Cached Sherman–Morrison–Woodbury plan for the rank-update path,
    /// keyed by the raw entries of the matrix it was prepared from.
    /// Valid only when `smw_fresh` is set. Replaying a plan is
    /// arithmetic-identical to rebuilding it, so this cache — like the
    /// exact factor cache — is invisible outside the phase profile.
    smw_plan: Option<SmwPlan>,
    smw_key: Vec<f64>,
    smw_fresh: bool,
    /// Split-plan batched-assembly state (replay list plus gmin-keyed
    /// baselines), built lazily on the first assembly when
    /// [`SimOptions::batch_assembly`] is set.
    batch: Option<BatchState>,
    /// Class-shared nominal assembly installed by the harness plumbing;
    /// compatible variants embed its baseline instead of re-summing their
    /// own static stamps.
    shared_assembly: Option<Arc<SharedAssembly>>,
    /// One-shot primed first DC Newton iteration (captured system plus
    /// blocked-kernel LU factors) installed by the lockstep variant
    /// plumbing ([`Simulator::install_lane_prime`]). Adopted only when
    /// every first-iteration precondition matches the capture bitwise;
    /// spent either way on the first iteration it could have applied to.
    lane_prime: Option<Arc<LanePrime>>,
}

impl<'a> std::fmt::Debug for Simulator<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("netlist", &self.nl.name())
            .field("n_nodes", &self.n_nodes)
            .field("n_vsrc", &self.vsrc.len())
            .finish()
    }
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with default [`SimOptions`].
    pub fn new(nl: &'a Netlist) -> Self {
        Self::with_options(nl, SimOptions::default())
    }

    /// Creates a simulator with explicit options.
    pub fn with_options(nl: &'a Netlist, opts: SimOptions) -> Self {
        let n_nodes = nl.node_count();
        let mut vsrc = Vec::new();
        let mut vsrc_row = HashMap::new();
        for (id, dev) in nl.devices() {
            if matches!(dev.kind, DeviceKind::Vsource { .. }) {
                vsrc_row.insert(id.index() as u32, vsrc.len());
                vsrc.push(id);
            }
        }
        let n_unknowns = (n_nodes - 1) + vsrc.len();
        let has_nonlinear = nl.devices().any(|(_, d)| {
            matches!(
                d.kind,
                DeviceKind::Diode { .. } | DeviceKind::Mosfet { .. } | DeviceKind::Switch { .. }
            )
        });
        Simulator {
            nl,
            opts,
            n_nodes,
            vsrc,
            vsrc_row,
            n_unknowns,
            source_override: HashMap::new(),
            a: DenseMatrix::zeros(n_unknowns),
            z: vec![0.0; n_unknowns],
            stats: SimStats::default(),
            has_nonlinear,
            dc_seed: None,
            last_dc: None,
            plan: None,
            lu: LuFactors::new(),
            factor_key: Vec::new(),
            factor_fresh: false,
            nominal: None,
            smw_plan: None,
            smw_key: Vec::new(),
            smw_fresh: false,
            batch: None,
            shared_assembly: None,
            lane_prime: None,
        }
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &'a Netlist {
        self.nl
    }

    /// The options in force.
    pub fn options(&self) -> &SimOptions {
        &self.opts
    }

    /// Mutable access to the options.
    pub fn options_mut(&mut self) -> &mut SimOptions {
        &mut self.opts
    }

    /// Solver telemetry accumulated over every analysis run so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Returns the accumulated telemetry and resets the accumulator.
    pub fn take_stats(&mut self) -> SimStats {
        std::mem::take(&mut self.stats)
    }

    /// Resets the telemetry accumulator.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
    }

    /// Overrides the DC value of the named source for subsequent analyses
    /// (used by [`Simulator::dc_sweep`] and test harnesses).
    ///
    /// # Errors
    /// [`SimError::BadSource`] if the device is not a V or I source.
    pub fn override_source(&mut self, name: &str, value: f64) -> Result<(), SimError> {
        let id = self
            .nl
            .device_id(name)
            .ok_or_else(|| SimError::BadSource(name.to_string()))?;
        match self.nl.device_by_id(id).map(|d| &d.kind) {
            Some(DeviceKind::Vsource { .. }) | Some(DeviceKind::Isource { .. }) => {
                self.source_override.insert(id.index() as u32, value);
                Ok(())
            }
            _ => Err(SimError::BadSource(name.to_string())),
        }
    }

    /// Removes a source override installed by [`Simulator::override_source`].
    pub fn clear_override(&mut self, name: &str) {
        if let Some(id) = self.nl.device_id(name) {
            self.source_override.remove(&(id.index() as u32));
        }
    }

    fn source_value(&self, id: DeviceId, wf: &dotm_netlist::Waveform, t: Option<f64>) -> f64 {
        if let Some(v) = self.source_override.get(&(id.index() as u32)) {
            return *v;
        }
        match t {
            Some(t) => wf.value_at(t),
            None => wf.dc_value(),
        }
    }

    /// Compiles the stamp plan: one pass over the netlist that folds
    /// every x-independent stamp into [`PlanOp::MatAdd`] constants and
    /// defers x-dependent devices to per-iteration re-linearisation.
    /// Ops are emitted in device-walk order with the per-device stamp
    /// order of the interpretive assembly, so replay is bit-identical.
    fn build_plan(&self) -> Vec<PlanOp<'a>> {
        let n_nodes = self.n_nodes;
        let row = |n: NodeId| -> Option<usize> {
            if n.is_ground() {
                None
            } else {
                Some(n.index() - 1)
            }
        };
        let mut plan = Vec::new();
        let nl: &'a Netlist = self.nl;
        for (id, dev) in nl.devices() {
            match &dev.kind {
                DeviceKind::Resistor { a: p, b: q, ohms } => {
                    let g = 1.0 / ohms;
                    // stamp_g order: (rp,rp) (rp,rq) (rq,rp) (rq,rq).
                    if let Some(rp) = row(*p) {
                        plan.push(PlanOp::MatAdd { r: rp, c: rp, v: g });
                        if let Some(rq) = row(*q) {
                            plan.push(PlanOp::MatAdd {
                                r: rp,
                                c: rq,
                                v: -g,
                            });
                            plan.push(PlanOp::MatAdd {
                                r: rq,
                                c: rp,
                                v: -g,
                            });
                            plan.push(PlanOp::MatAdd { r: rq, c: rq, v: g });
                        }
                    } else if let Some(rq) = row(*q) {
                        plan.push(PlanOp::MatAdd { r: rq, c: rq, v: g });
                    }
                }
                DeviceKind::Capacitor { .. } => {
                    // Companion instances in transient; open in DC.
                }
                DeviceKind::Vsource { pos, neg, waveform } => {
                    let k = self.vsrc_row[&(id.index() as u32)];
                    let br = (n_nodes - 1) + k;
                    if let Some(rp) = row(*pos) {
                        plan.push(PlanOp::MatAdd {
                            r: rp,
                            c: br,
                            v: 1.0,
                        });
                        plan.push(PlanOp::MatAdd {
                            r: br,
                            c: rp,
                            v: 1.0,
                        });
                    }
                    if let Some(rq) = row(*neg) {
                        plan.push(PlanOp::MatAdd {
                            r: rq,
                            c: br,
                            v: -1.0,
                        });
                        plan.push(PlanOp::MatAdd {
                            r: br,
                            c: rq,
                            v: -1.0,
                        });
                    }
                    plan.push(PlanOp::VsrcZ {
                        row: br,
                        id,
                        wf: waveform,
                    });
                }
                DeviceKind::Isource { pos, neg, waveform } => {
                    plan.push(PlanOp::IsrcZ {
                        rp: row(*pos),
                        rq: row(*neg),
                        id,
                        wf: waveform,
                    });
                }
                DeviceKind::Diode { .. }
                | DeviceKind::Mosfet { .. }
                | DeviceKind::Switch { .. } => {
                    plan.push(PlanOp::Nonlinear(dev));
                }
            }
        }
        plan
    }

    /// Assembles the linearised MNA system `A·x_next = z` around guess `x`.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &mut self,
        x: &[f64],
        t: Option<f64>,
        tran: Option<&TranCtx<'_>>,
        gmin: f64,
        src_scale: f64,
    ) {
        if self.plan.is_none() {
            self.plan = Some(self.build_plan());
        }
        if self.opts.batch_assembly && self.batch.is_none() {
            let t0 = dotm_obs::start();
            let state = batch::build_batch(
                self.nl,
                self.plan.as_deref().expect("plan built above"),
                self.n_nodes,
                self.n_unknowns,
                self.shared_assembly.as_ref(),
            );
            dotm_obs::phase(dotm_obs::Phase::BatchAssembly, t0);
            self.batch = Some(state);
        }
        let volt = |n: NodeId| -> f64 {
            if n.is_ground() {
                0.0
            } else {
                x[n.index() - 1]
            }
        };

        // Borrow-friendly local stamp helpers.
        let overrides = &self.source_override;
        let src_val = |id: DeviceId, wf: &dotm_netlist::Waveform, t: Option<f64>| -> f64 {
            if let Some(v) = overrides.get(&(id.index() as u32)) {
                return *v;
            }
            match t {
                Some(t) => wf.value_at(t),
                None => wf.dc_value(),
            }
        };
        let a = &mut self.a;
        let z = &mut self.z;
        let row = |n: NodeId| -> Option<usize> {
            if n.is_ground() {
                None
            } else {
                Some(n.index() - 1)
            }
        };
        let stamp_g = |a: &mut DenseMatrix, p: NodeId, q: NodeId, g: f64| {
            if let Some(rp) = row(p) {
                a.add(rp, rp, g);
                if let Some(rq) = row(q) {
                    a.add(rp, rq, -g);
                    a.add(rq, rp, -g);
                    a.add(rq, rq, g);
                }
            } else if let Some(rq) = row(q) {
                a.add(rq, rq, g);
            }
        };
        // Transconductance: current into node `out_p`, out of `out_q`,
        // controlled by v(ctl_p) − v(ctl_q).
        let stamp_vccs = |a: &mut DenseMatrix,
                          out_p: NodeId,
                          out_q: NodeId,
                          ctl_p: NodeId,
                          ctl_q: NodeId,
                          g: f64| {
            for (out, sign) in [(out_p, 1.0), (out_q, -1.0)] {
                if let Some(ro) = row(out) {
                    if let Some(rc) = row(ctl_p) {
                        a.add(ro, rc, sign * g);
                    }
                    if let Some(rc) = row(ctl_q) {
                        a.add(ro, rc, -sign * g);
                    }
                }
            }
        };
        // Independent current `i` flowing out of node p, into node q.
        let stamp_i = |z: &mut [f64], p: NodeId, q: NodeId, i: f64| {
            if let Some(rp) = row(p) {
                z[rp] -= i;
            }
            if let Some(rq) = row(q) {
                z[rq] += i;
            }
        };

        // One plan op, executed identically by both assembly paths below.
        let run_op = |op: &PlanOp<'_>, a: &mut DenseMatrix, z: &mut [f64]| {
            let dev = match op {
                PlanOp::MatAdd { r, c, v } => {
                    a.add(*r, *c, *v);
                    return;
                }
                PlanOp::VsrcZ { row: br, id, wf } => {
                    z[*br] = src_val(*id, wf, t) * src_scale;
                    return;
                }
                PlanOp::IsrcZ { rp, rq, id, wf } => {
                    let i = src_val(*id, wf, t) * src_scale;
                    if let Some(rp) = rp {
                        z[*rp] -= i;
                    }
                    if let Some(rq) = rq {
                        z[*rq] += i;
                    }
                    return;
                }
                PlanOp::Nonlinear(dev) => *dev,
            };
            match &dev.kind {
                DeviceKind::Diode {
                    anode,
                    cathode,
                    params,
                } => {
                    let vd = volt(*anode) - volt(*cathode);
                    let (idv, gd) = diode_eval(vd, params);
                    stamp_g(a, *anode, *cathode, gd);
                    let ieq = idv - gd * vd;
                    stamp_i(z, *anode, *cathode, ieq);
                }
                DeviceKind::Mosfet {
                    d,
                    g,
                    s,
                    b,
                    ty,
                    params,
                } => {
                    let vgs = volt(*g) - volt(*s);
                    let vds = volt(*d) - volt(*s);
                    let vbs = volt(*b) - volt(*s);
                    let ch = mosfet_eval(vgs, vds, vbs, *ty, params);
                    // Conductive stamps from the partial derivatives.
                    stamp_vccs(a, *d, *s, *g, *s, ch.gm);
                    stamp_vccs(a, *d, *s, *d, *s, ch.gds);
                    stamp_vccs(a, *d, *s, *b, *s, ch.gmbs);
                    let ieq = ch.ids - ch.gm * vgs - ch.gds * vds - ch.gmbs * vbs;
                    stamp_i(z, *d, *s, ieq);
                    // Bulk junction diodes (leakage paths). For NMOS the
                    // bulk is the anode; for PMOS the drain/source are.
                    let jp = DiodeParams {
                        is: params.is_leak,
                        n: 1.0,
                    };
                    let junctions: [(NodeId, NodeId); 2] = match ty {
                        dotm_netlist::MosType::Nmos => [(*b, *d), (*b, *s)],
                        dotm_netlist::MosType::Pmos => [(*d, *b), (*s, *b)],
                    };
                    for (an, ca) in junctions {
                        let vd = volt(an) - volt(ca);
                        let (idv, gd) = diode_eval(vd, &jp);
                        stamp_g(a, an, ca, gd);
                        stamp_i(z, an, ca, idv - gd * vd);
                    }
                }
                DeviceKind::Switch {
                    a: p,
                    b: q,
                    cp,
                    cn,
                    params,
                } => {
                    let vc = volt(*cp) - volt(*cn);
                    let vab = volt(*p) - volt(*q);
                    let (g, dg) = switch_eval(vc, params);
                    stamp_g(a, *p, *q, g);
                    // Control coupling: ∂i/∂vc = dg·vab.
                    stamp_vccs(a, *p, *q, *cp, *cn, dg * vab);
                    // i = g·vab exactly, so the companion current is the
                    // part not captured by the linear stamps.
                    let ieq = -dg * vab * vc;
                    stamp_i(z, *p, *q, ieq);
                }
                // Linear kinds never appear as `Nonlinear` plan ops.
                _ => unreachable!("linear device in nonlinear plan op"),
            }
        };

        let plan = self.plan.as_deref().expect("plan built above");
        match (self.opts.batch_assembly, self.batch.as_mut()) {
            // Batched split-plan path: install the gmin + static-stamp
            // baseline (full matrix write once per gmin, O(dynamic cells)
            // reset afterwards), then replay only the x-dependent ops
            // (plus constant ops sharing a cell with one, preserving the
            // per-cell addition order — see `crate::batch`).
            (true, Some(state)) => {
                state.install_into(a, self.n_nodes, self.n_unknowns, gmin);
                z.fill(0.0);
                for &i in state.replay() {
                    run_op(&plan[i as usize], a, z);
                }
            }
            // Scalar path: full interpretive replay.
            _ => {
                a.clear();
                z.fill(0.0);
                // gmin from every node to ground.
                for r in 0..(self.n_nodes - 1) {
                    a.add(r, r, gmin);
                }
                for op in plan {
                    run_op(op, a, z);
                }
            }
        }

        // Transient companion models for capacitors.
        if let Some(ctx) = tran {
            for (ci, cap) in ctx.caps.iter().enumerate() {
                if cap.c <= 0.0 {
                    continue;
                }
                let st = ctx.states[ci];
                let (geq, ieq) = if ctx.trap {
                    let geq = 2.0 * cap.c / ctx.h;
                    (geq, geq * st.v + st.i)
                } else {
                    let geq = cap.c / ctx.h;
                    (geq, geq * st.v)
                };
                stamp_g(a, cap.a, cap.b, geq);
                // ieq acts as a current source from b into a.
                stamp_i(z, cap.b, cap.a, ieq);
            }
        }
    }

    /// Runs Newton–Raphson from guess `x`, leaving the solution in `x`.
    ///
    /// Thin observability wrapper: attributes the whole solve (including
    /// its per-iteration assembly and LU time) to the `newton` phase of
    /// the trace side channel. Costs one relaxed atomic load when
    /// tracing is off.
    fn newton(
        &mut self,
        x: &mut [f64],
        t: Option<f64>,
        tran: Option<&TranCtx<'_>>,
        gmin: f64,
        src_scale: f64,
    ) -> NrOutcome {
        let t_newton = dotm_obs::start();
        let outcome = self.newton_inner(x, t, tran, gmin, src_scale);
        dotm_obs::phase(dotm_obs::Phase::Newton, t_newton);
        outcome
    }

    fn newton_inner(
        &mut self,
        x: &mut [f64],
        t: Option<f64>,
        tran: Option<&TranCtx<'_>>,
        gmin: f64,
        src_scale: f64,
    ) -> NrOutcome {
        let n_v = self.n_nodes - 1;
        let mut xnext = vec![0.0; self.n_unknowns];
        self.stats.nr_solves += 1;
        for iter in 0..self.opts.max_iter {
            self.stats.nr_iterations += 1;
            // Lockstep prime: iteration 0 of a DC solve may adopt the
            // system the variant pre-pass captured and factored in the
            // blocked SoA kernel instead of assembling it again. The
            // guards demand a bitwise match of every input the assembly
            // depends on, so the loaded `(A, z)` equals what `assemble`
            // would have produced — and any divergence (escalated rung,
            // transient initial point, different seed, source override)
            // falls through to the untouched scalar path.
            let primed = if iter == 0 {
                self.take_matching_prime(x, t, tran, gmin, src_scale)
            } else {
                None
            };
            if let Some(p) = primed.as_deref() {
                let t_ls = dotm_obs::start();
                self.a.load_entries(&p.entries);
                self.z.copy_from_slice(&p.z);
                dotm_obs::phase(dotm_obs::Phase::VariantLockstep, t_ls);
                dotm_obs::counter("lockstep.prime_hits", 1);
            } else {
                let t_asm = dotm_obs::start();
                self.assemble(x, t, tran, gmin, src_scale);
                dotm_obs::phase(dotm_obs::Phase::Assembly, t_asm);
            }
            xnext.copy_from_slice(&self.z);

            // Rank-update fast path: when nominal factors are installed
            // and this is a DC solve at the nominal gmin, try to solve
            // the variant system as a low-rank update before paying for
            // a factorisation. Transient solves are excluded (companion
            // stamps perturb many columns), as is any homotopy gmin —
            // those perturb every node diagonal.
            let mut solved = false;
            if self.opts.rank_update && tran.is_none() {
                if let Some(nominal) = self.nominal.clone() {
                    if nominal.gmin() == gmin {
                        let t_ru = dotm_obs::start();
                        // The update plan (changed columns, update
                        // solves, factored capacitance matrix) depends
                        // only on the assembled matrix, which linear
                        // variants re-assemble bit-identically for every
                        // measurement — so cache it keyed by the raw
                        // matrix entries and only rescan when they move.
                        if !(self.smw_fresh && self.smw_key == self.a.entries()) {
                            self.smw_fresh = false;
                            self.smw_plan = None;
                            match nominal.prepare(&self.a, self.n_nodes) {
                                Ok(plan) => {
                                    self.smw_plan = Some(plan);
                                    self.smw_key.clear();
                                    self.smw_key.extend_from_slice(self.a.entries());
                                    self.smw_fresh = true;
                                }
                                // A delta that is not low-rank is a
                                // plain miss; an ill-conditioned update
                                // is an accounted fallback.
                                Err(SmwOutcome::IllConditioned) => {
                                    self.stats.factor_refactor_fallbacks += 1;
                                }
                                Err(_) => {}
                            }
                        }
                        if let Some(plan) = &self.smw_plan {
                            match nominal.solve_with(plan, &self.a, &self.z, &mut xnext) {
                                SmwOutcome::Solved => {
                                    self.stats.factor_reuse_hits += 1;
                                    solved = true;
                                }
                                // A failed residual check is verdict-
                                // affecting divergence: an accounted
                                // fallback to full refactorisation.
                                _ => {
                                    self.stats.factor_refactor_fallbacks += 1;
                                }
                            }
                        }
                        dotm_obs::phase(dotm_obs::Phase::RankUpdate, t_ru);
                    }
                }
            }

            if !solved {
                let t_lu = dotm_obs::start();
                // Exact factor cache: if the assembled matrix is
                // bit-identical to the one `lu` holds factors for, skip
                // the O(n³) refactorisation. Identical matrix + identical
                // solve arithmetic ⇒ identical solution bits, so this
                // cache is invisible everywhere except the hit counter.
                let reuse = self.opts.factor_reuse
                    && self.factor_fresh
                    && self.factor_key == self.a.entries();
                if reuse {
                    self.stats.factor_reuse_hits += 1;
                } else if let Some(p) = primed.as_deref() {
                    // Adopt the pre-pass factors: bitwise what
                    // `refactor(&self.a)` would compute (the SoA kernel
                    // mirrors it per lane), leaving exactly the
                    // post-refactor cache state. Like a successful
                    // refactor, this increments no SimStats counter, so
                    // the lockstep knob is stats-invisible. Singular
                    // lanes never get a prime and re-discover the
                    // failure through the scalar branch below.
                    self.factor_fresh = false;
                    self.lu.clone_from(&p.lu);
                    if self.opts.factor_reuse {
                        self.factor_key.clear();
                        self.factor_key.extend_from_slice(self.a.entries());
                        self.factor_fresh = true;
                    }
                } else {
                    // The key goes stale the moment a refactor starts
                    // (even a reuse-off refactor replaces the factors).
                    self.factor_fresh = false;
                    if self.lu.refactor(&self.a).is_err() {
                        dotm_obs::phase(dotm_obs::Phase::Lu, t_lu);
                        self.stats.singular_pivots += 1;
                        return NrOutcome::Singular;
                    }
                    if self.opts.factor_reuse {
                        self.factor_key.clear();
                        self.factor_key.extend_from_slice(self.a.entries());
                        self.factor_fresh = true;
                    }
                }
                self.lu.solve(&mut xnext);
                dotm_obs::phase(dotm_obs::Phase::Lu, t_lu);
            }
            let mut converged = true;
            for (i, xn) in xnext.iter_mut().enumerate() {
                if !xn.is_finite() {
                    self.stats.singular_pivots += 1;
                    return NrOutcome::Singular;
                }
                let dx = *xn - x[i];
                let (abstol, limit) = if i < n_v {
                    (self.opts.abstol_v, self.opts.v_step_limit)
                } else {
                    (self.opts.abstol_i, f64::INFINITY)
                };
                // The v-step clamp is applied *before* the tolerance test:
                // the point this iteration actually accepts is the clamped
                // one, so convergence means "the accepted point is within
                // tolerance of the unclamped Newton target" — i.e. the
                // residual overshoot beyond the limit, not the raw dx, is
                // what must shrink below tol. A clamped step that lands
                // within tolerance of the clamp is done; testing the
                // unclamped dx first (as before) made that step report
                // `limited` and burn one extra full assemble+LU iteration.
                // A genuinely far target (overshoot >> tol) still iterates.
                let clamped = dx.abs() > limit;
                if clamped {
                    *xn = x[i] + limit.copysign(dx);
                }
                let tol = abstol + self.opts.reltol * xn.abs().max(x[i].abs());
                let overshoot = if clamped { dx.abs() - limit } else { dx.abs() };
                if overshoot > tol {
                    converged = false;
                }
            }
            x.copy_from_slice(&xnext);
            // A purely linear system is solved exactly by its first
            // iteration (the stamps do not depend on `x`), so a converged
            // first iteration needs no confirming re-solve; nonlinear
            // circuits must re-linearise at the new point at least once.
            if converged && (iter > 0 || !self.has_nonlinear) {
                return NrOutcome::Converged;
            }
        }
        self.stats.maxiter_exhausted += 1;
        NrOutcome::MaxIter
    }

    fn op_point(&mut self, x: Vec<f64>) -> OpPoint {
        self.last_dc = Some(x.clone());
        OpPoint {
            x,
            n_nodes: self.n_nodes,
            vsrc: self.vsrc.clone(),
        }
    }

    /// The most recent successfully solved DC operating point (including
    /// the transient initial point), for warm-start capture.
    pub fn last_dc_op(&self) -> Option<OpPoint> {
        self.last_dc.as_ref().map(|x| OpPoint {
            x: x.clone(),
            n_nodes: self.n_nodes,
            vsrc: self.vsrc.clone(),
        })
    }

    /// Assembles and factors the MNA matrix at the most recent solved DC
    /// point — for the *nominal* circuit this is the matrix every fault
    /// variant is a low-rank perturbation of. Returns `None` when no DC
    /// point has been solved yet or the matrix is singular.
    ///
    /// The capture runs its own assembly (the Newton loop's last
    /// assembled matrix is linearised at the pre-update iterate, not at
    /// the accepted solution) at the DC conditions: no transient
    /// companions, the target `gmin`, full source scale.
    pub fn capture_nominal_factors(&mut self) -> Option<Arc<NominalFactors>> {
        let x = self.last_dc.clone()?;
        self.assemble(&x, None, None, self.opts.gmin, 1.0);
        NominalFactors::capture(
            self.a.clone(),
            self.n_nodes,
            self.vsrc.len(),
            self.opts.gmin,
        )
        .map(Arc::new)
    }

    /// Installs nominal-circuit factors (captured on the fault-free
    /// netlist by [`Simulator::capture_nominal_factors`]) for the
    /// rank-update solve path. Only consulted when
    /// [`SimOptions::rank_update`] is set.
    pub fn install_nominal_factors(&mut self, factors: Arc<NominalFactors>) {
        self.nominal = Some(factors);
        // A cached update plan embeds solves against the previous
        // nominal factors; it cannot outlive them.
        self.smw_plan = None;
        self.smw_key.clear();
        self.smw_fresh = false;
    }

    /// Installs a class-shared assembly compiled from the nominal
    /// (fault-free) netlist by [`SharedAssembly::compile`]. Variants
    /// whose device list is a prefix-extension of the shared base adopt
    /// its static baseline instead of rebuilding their own; anything
    /// else (Monte-Carlo parameter corners, node splits) falls back to a
    /// locally split plan. Only consulted when
    /// [`SimOptions::batch_assembly`] is set.
    pub fn install_shared_assembly(&mut self, shared: Arc<SharedAssembly>) {
        self.shared_assembly = Some(shared);
        self.batch = None;
    }

    /// Installs a one-shot primed first DC Newton iteration produced by
    /// the lockstep variant pre-pass (`crate::soa::prime_lanes`).
    ///
    /// The prime is only a speed-up, never a correctness dependency:
    /// the first Newton iteration adopts it solely when every input the
    /// assembly depends on matches the capture bitwise (DC solve, base
    /// gmin, unit source scale, no source overrides, identical starting
    /// iterate and dimensions); otherwise it is dropped and the scalar
    /// assemble + factor path runs untouched.
    pub fn install_lane_prime(&mut self, prime: Arc<LanePrime>) {
        self.lane_prime = Some(prime);
    }

    /// Captures the exact system the first Newton iteration of the next
    /// DC operating-point solve would assemble: the warm-seed (or zero)
    /// starting iterate plus the MNA matrix and RHS assembled at it with
    /// the base options gmin and unit source scale. Run on a scratch
    /// simulator by the lockstep variant pre-pass; the scratch stats are
    /// discarded by the caller.
    ///
    /// Returns `None` while a source override is active — the override
    /// lives outside the netlist, so the capture could not prove itself
    /// equal to a later measurement assembly.
    pub fn lockstep_capture(&mut self) -> Option<LaneSystem> {
        if !self.source_override.is_empty() {
            return None;
        }
        let x0 = match &self.dc_seed {
            Some(seed) => seed.clone(),
            None => vec![0.0; self.n_unknowns],
        };
        self.assemble(&x0, None, None, self.opts.gmin, 1.0);
        Some(LaneSystem::new(
            x0,
            self.opts.gmin,
            self.a.entries().to_vec(),
            self.z.clone(),
        ))
    }

    /// Consumes the installed lane prime iff the state of this first
    /// Newton iteration matches the capture bitwise. Either way the
    /// prime is spent: `x` moves after iteration 0, so a prime that did
    /// not match this solve's first iteration can never match again.
    fn take_matching_prime(
        &mut self,
        x: &[f64],
        t: Option<f64>,
        tran: Option<&TranCtx<'_>>,
        gmin: f64,
        src_scale: f64,
    ) -> Option<Arc<LanePrime>> {
        let p = self.lane_prime.take()?;
        let matches = t.is_none()
            && tran.is_none()
            && src_scale == 1.0
            && self.source_override.is_empty()
            && p.dim() == self.n_unknowns
            && p.gmin.to_bits() == gmin.to_bits()
            && p.x0.len() == x.len()
            && p.x0.iter().zip(x).all(|(a, b)| a.to_bits() == b.to_bits());
        if matches {
            Some(p)
        } else {
            None
        }
    }

    /// Splits this simulator's stamp plan into static (hoistable) and
    /// dynamic (per-iteration) parts for [`SharedAssembly::compile`].
    pub(crate) fn split_parts(&mut self) -> batch::SplitParts {
        if self.plan.is_none() {
            self.plan = Some(self.build_plan());
        }
        let plan = self.plan.as_deref().expect("plan built above");
        let dynamic = batch::dynamic_cells(self.nl, self.n_unknowns);
        let (static_ops, _replay) = batch::classify(plan, &dynamic);
        batch::SplitParts {
            n_nodes: self.n_nodes,
            n_unknowns: self.n_unknowns,
            n_ops: plan.len(),
            dynamic,
            static_ops,
        }
    }

    /// Installs `op` — typically the fault-free nominal solution — as a
    /// one-shot warm-start guess for the next DC solve (including the
    /// transient initial point).
    ///
    /// Fault injection only ever *appends* nodes and devices, so a
    /// nominal solution maps onto the faulted circuit's unknown vector by
    /// copying the node-voltage and branch-current sections to their new
    /// positions and zero-filling the appended entries. The append-only
    /// invariant is checked structurally: `op`'s node count must not
    /// exceed this simulator's, and `op`'s voltage sources must be an
    /// exact id-prefix of this simulator's (device removal reindexes ids
    /// and breaks the prefix). Returns `false` — and installs nothing, so
    /// the solve starts cold — when the check fails.
    pub fn seed_dc_from(&mut self, op: &OpPoint) -> bool {
        if op.n_nodes == 0
            || op.n_nodes > self.n_nodes
            || op.vsrc.len() > self.vsrc.len()
            || op.vsrc != self.vsrc[..op.vsrc.len()]
        {
            return false;
        }
        debug_assert_eq!(op.x.len(), (op.n_nodes - 1) + op.vsrc.len());
        let mut x = vec![0.0; self.n_unknowns];
        x[..op.n_nodes - 1].copy_from_slice(&op.x[..op.n_nodes - 1]);
        for (k, &i) in op.x[op.n_nodes - 1..].iter().enumerate() {
            x[self.n_nodes - 1 + k] = i;
        }
        self.dc_seed = Some(x);
        true
    }

    /// Solves the DC operating point.
    ///
    /// Tries plain Newton–Raphson first, then gmin stepping, then source
    /// stepping.
    ///
    /// # Errors
    /// [`SimError::NoConvergence`] if all homotopies fail;
    /// [`SimError::Singular`] if the matrix is structurally singular.
    pub fn dc_op(&mut self) -> Result<OpPoint, SimError> {
        self.dc_op_from(&vec![0.0; self.n_unknowns])
    }

    /// Solves the DC operating point starting from a previous solution
    /// (continuation) — used by sweeps and the transient initial point.
    ///
    /// # Errors
    /// See [`Simulator::dc_op`].
    pub fn dc_op_from(&mut self, guess: &[f64]) -> Result<OpPoint, SimError> {
        self.robust_dc(guess, None, "dc")
    }

    /// The full homotopy chain (plain Newton → gmin stepping → source
    /// stepping) at an optional source-evaluation time.
    fn robust_dc(
        &mut self,
        guess: &[f64],
        t: Option<f64>,
        analysis: &'static str,
    ) -> Result<OpPoint, SimError> {
        // Warm start: one plain Newton solve from the seeded nominal
        // solution. On failure of any kind the full cold homotopy chain
        // below runs unchanged — the seed is only ever a speed-up, never
        // a correctness dependency.
        if let Some(seed) = self.dc_seed.take() {
            let mut x = seed;
            match self.newton(&mut x, t, None, self.opts.gmin, 1.0) {
                NrOutcome::Converged => {
                    self.stats.warm_hits += 1;
                    self.stats.converged_plain += 1;
                    return Ok(self.op_point(x));
                }
                NrOutcome::Singular | NrOutcome::MaxIter => {
                    self.stats.warm_misses += 1;
                }
            }
        }

        let mut x = guess.to_vec();
        x.resize(self.n_unknowns, 0.0);
        match self.newton(&mut x, t, None, self.opts.gmin, 1.0) {
            NrOutcome::Converged => {
                self.stats.converged_plain += 1;
                return Ok(self.op_point(x));
            }
            NrOutcome::Singular | NrOutcome::MaxIter => {}
        }

        // gmin stepping. The ladder starts at least four decades above
        // the target so the loop always executes (a large target gmin
        // used to skip the body entirely and return the unsolved
        // all-zeros vector as "converged"), and the point is only
        // accepted after a genuinely converged solve at the target gmin
        // itself.
        let mut x = vec![0.0; self.n_unknowns];
        let mut gmin = (self.opts.gmin * 1e4).max(1e-2);
        let mut ok = true;
        let mut solved_at_target = false;
        while gmin > self.opts.gmin * 0.9 {
            let eff = gmin.max(self.opts.gmin);
            match self.newton(&mut x, t, None, eff, 1.0) {
                NrOutcome::Converged => {
                    solved_at_target = eff == self.opts.gmin;
                }
                _ => {
                    ok = false;
                    break;
                }
            }
            gmin /= 10.0;
        }
        if ok && !solved_at_target {
            // The decade ladder landed near but not exactly on the target
            // (floating-point division drift, or a target above the
            // ladder's floor): one final confirming solve at the target.
            ok = matches!(
                self.newton(&mut x, t, None, self.opts.gmin, 1.0),
                NrOutcome::Converged
            );
        }
        if ok {
            self.stats.converged_gmin += 1;
            return Ok(self.op_point(x));
        }

        // Source stepping.
        let mut x = vec![0.0; self.n_unknowns];
        let steps = 40;
        for k in 1..=steps {
            let scale = k as f64 / steps as f64;
            match self.newton(&mut x, t, None, self.opts.gmin.max(1e-9), scale) {
                NrOutcome::Converged => {}
                NrOutcome::Singular => {
                    self.stats.dc_failures += 1;
                    return Err(SimError::Singular { analysis });
                }
                NrOutcome::MaxIter => {
                    self.stats.dc_failures += 1;
                    return Err(SimError::NoConvergence {
                        analysis,
                        time: t,
                        iterations: self.opts.max_iter,
                    });
                }
            }
        }
        // Final polish at full scale with target gmin.
        match self.newton(&mut x, t, None, self.opts.gmin, 1.0) {
            NrOutcome::Converged => {
                self.stats.converged_source += 1;
                Ok(self.op_point(x))
            }
            NrOutcome::Singular => {
                self.stats.dc_failures += 1;
                Err(SimError::Singular { analysis })
            }
            NrOutcome::MaxIter => {
                self.stats.dc_failures += 1;
                Err(SimError::NoConvergence {
                    analysis,
                    time: t,
                    iterations: self.opts.max_iter,
                })
            }
        }
    }

    /// Sweeps the named V or I source over `values`, solving a DC operating
    /// point at each (with continuation between points).
    ///
    /// # Errors
    /// [`SimError::BadSource`] for a non-source device; otherwise the first
    /// failing operating point's error.
    ///
    /// The swept source's override state is restored on **every** exit
    /// path — including a mid-sweep solver failure — so a failed sweep
    /// never leaves the source pinned at the last swept value for
    /// subsequent analyses (and a pre-existing override survives the
    /// sweep).
    pub fn dc_sweep(&mut self, source: &str, values: &[f64]) -> Result<Vec<OpPoint>, SimError> {
        let prev = self
            .nl
            .device_id(source)
            .and_then(|id| self.source_override.get(&(id.index() as u32)).copied());
        let mut out = Vec::with_capacity(values.len());
        let mut guess = vec![0.0; self.n_unknowns];
        let mut first_err = None;
        for &v in values {
            let point = self
                .override_source(source, v)
                .and_then(|()| self.dc_op_from(&guess));
            match point {
                Ok(op) => {
                    guess.copy_from_slice(&op.x);
                    out.push(op);
                }
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        if let Some(id) = self.nl.device_id(source) {
            match prev {
                Some(v) => {
                    self.source_override.insert(id.index() as u32, v);
                }
                None => {
                    self.source_override.remove(&(id.index() as u32));
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Collects the companion capacitor instances (explicit capacitors plus
    /// MOSFET parasitics).
    fn collect_caps(&self) -> Vec<CapInst> {
        let mut caps = Vec::new();
        for (_, dev) in self.nl.devices() {
            match &dev.kind {
                DeviceKind::Capacitor { a, b, farads } => caps.push(CapInst {
                    a: *a,
                    b: *b,
                    c: *farads,
                }),
                DeviceKind::Mosfet {
                    d, g, s, b, params, ..
                } => {
                    let cg = 0.5 * params.gate_cap();
                    caps.push(CapInst {
                        a: *g,
                        b: *s,
                        c: cg,
                    });
                    caps.push(CapInst {
                        a: *g,
                        b: *d,
                        c: cg,
                    });
                    caps.push(CapInst {
                        a: *d,
                        b: *b,
                        c: params.cj,
                    });
                    caps.push(CapInst {
                        a: *s,
                        b: *b,
                        c: params.cj,
                    });
                }
                _ => {}
            }
        }
        caps
    }

    /// Runs a transient analysis from `t = 0` to `tstop` with output grid
    /// spacing `dt`. The initial condition is the DC operating point with
    /// sources evaluated at `t = 0`.
    ///
    /// Internally the step is halved (up to
    /// [`SimOptions::max_step_halvings`] times) when Newton fails, so sharp
    /// source edges do not abort the analysis.
    ///
    /// # Errors
    /// [`SimError::InvalidRequest`] for a non-positive `dt` or `tstop`;
    /// [`SimError::NoConvergence`] / [`SimError::Singular`] from the solver.
    pub fn transient(&mut self, tstop: f64, dt: f64) -> Result<TranResult, SimError> {
        if !(dt > 0.0 && tstop > 0.0 && tstop.is_finite()) {
            return Err(SimError::InvalidRequest(format!(
                "transient requires dt > 0 and tstop > 0 (dt = {dt}, tstop = {tstop})"
            )));
        }
        let caps = self.collect_caps();
        // Initial condition: DC at t = 0.
        let op0 = self.transient_initial()?;
        let mut x = op0.x.clone();
        let volt_of = |x: &[f64], n: NodeId| -> f64 {
            if n.is_ground() {
                0.0
            } else {
                x[n.index() - 1]
            }
        };
        let mut states: Vec<CapState> = caps
            .iter()
            .map(|c| CapState {
                v: volt_of(&x, c.a) - volt_of(&x, c.b),
                i: 0.0,
            })
            .collect();

        // Output grid: when `tstop` is an integer multiple of `dt` (to fp
        // tolerance), the grid is exactly `k·dt` as before. Otherwise the
        // old `.round()` silently simulated to the wrong end time (e.g.
        // tstop = 1 ns, dt = 0.3 ns stopped at 0.9 ns); now the grid gains
        // a final point clamped to `tstop` itself.
        // The tolerance must scale with `dt`, not only `tstop`: a pure
        // `1e-9·tstop` bound grows toward a full step at large step
        // counts and misclassifies near-divisors, while a pure `1e-9·dt`
        // bound is tighter than the rounding noise of a divisor computed
        // in floating point (`dt = tstop/3.0` accumulates error of order
        // `eps·tstop` in `ratio.round()·dt`). Use both terms.
        let ratio = tstop / dt;
        let exact = (ratio.round() * dt - tstop).abs() <= 1e-9 * dt + 4.0 * f64::EPSILON * tstop;
        let n_out = if exact {
            ratio.round() as usize
        } else {
            ratio.ceil() as usize
        };
        let mut result = TranResult {
            times: Vec::with_capacity(n_out + 1),
            states: Vec::with_capacity(n_out + 1),
            n_nodes: self.n_nodes,
            vsrc: self.vsrc.clone(),
        };
        result.times.push(0.0);
        result.states.push(x.clone());

        let trap_ok = self.opts.integration == Integration::Trapezoidal;
        let mut first_step = true;
        let mut t = 0.0;
        // Step-carry (`DOTM_TRAN_STEP_CARRY`): once halvings find a working
        // `h` at a sharp edge, restarting the next step from the full
        // remaining interval repeats up to `max_step_halvings` rejected
        // Newton solves per accepted step. Carrying the accepted `h`
        // forward with a ×2 ramp (capped at the remaining interval) keeps
        // the step near the edge-resolving size. Off by default: the step
        // sequence changes, which perturbs round-off.
        let mut carried: Option<f64> = None;
        for k in 1..=n_out {
            let t_target = if !exact && k == n_out {
                tstop
            } else {
                k as f64 * dt
            };
            while t < t_target - 1e-18 * t_target.max(1.0) {
                let remaining = t_target - t;
                let mut h = match carried {
                    Some(c) if self.opts.tran_step_carry => c.min(remaining),
                    _ => remaining,
                };
                let mut halvings = 0;
                loop {
                    // BE on the very first step (no stored cap current yet).
                    let trap = trap_ok && !first_step;
                    let ctx = TranCtx {
                        caps: &caps,
                        states: &states,
                        h,
                        trap,
                    };
                    let mut xt = x.clone();
                    match self.newton(&mut xt, Some(t + h), Some(&ctx), self.opts.gmin, 1.0) {
                        NrOutcome::Converged => {
                            // Accept: update capacitor states.
                            for (ci, cap) in caps.iter().enumerate() {
                                let vnew = volt_of(&xt, cap.a) - volt_of(&xt, cap.b);
                                let st = &mut states[ci];
                                let inew = if trap {
                                    2.0 * cap.c / h * (vnew - st.v) - st.i
                                } else {
                                    cap.c / h * (vnew - st.v)
                                };
                                st.v = vnew;
                                st.i = inew;
                            }
                            x = xt;
                            t += h;
                            first_step = false;
                            self.stats.tran_steps += 1;
                            if self.opts.tran_step_carry {
                                carried = Some(2.0 * h);
                            }
                            break;
                        }
                        NrOutcome::Singular => {
                            self.stats.rejected_steps += 1;
                            return Err(SimError::Singular {
                                analysis: "transient",
                            });
                        }
                        NrOutcome::MaxIter => {
                            self.stats.rejected_steps += 1;
                            halvings += 1;
                            if halvings > self.opts.max_step_halvings {
                                return Err(SimError::NoConvergence {
                                    analysis: "transient",
                                    time: Some(t + h),
                                    iterations: self.opts.max_iter,
                                });
                            }
                            self.stats.step_halvings += 1;
                            h /= 2.0;
                        }
                    }
                }
            }
            result.times.push(t_target);
            result.states.push(x.clone());
        }
        Ok(result)
    }

    /// DC solve with time-zero source values (for the transient initial
    /// condition) — the full homotopy chain applies here too, because
    /// fault-injected circuits at corner process samples routinely need
    /// source stepping.
    fn transient_initial(&mut self) -> Result<OpPoint, SimError> {
        let zeros = vec![0.0; self.n_unknowns];
        self.robust_dc(&zeros, Some(0.0), "transient")
    }

    /// Terminal DC currents of the named device at an operating point, in
    /// terminal order. Capacitors report zero (DC). Voltage sources report
    /// their branch current on both terminals (positive out of `pos`).
    ///
    /// Returns `None` for an unknown device.
    pub fn device_currents(&self, op: &OpPoint, name: &str) -> Option<Vec<f64>> {
        let id = self.nl.device_id(name)?;
        let dev: &Device = self.nl.device_by_id(id)?;
        let v = |n: NodeId| op.voltage(n);
        Some(match &dev.kind {
            DeviceKind::Resistor { a, b, ohms } => {
                let i = (v(*a) - v(*b)) / ohms;
                vec![i, -i]
            }
            DeviceKind::Capacitor { .. } => vec![0.0, 0.0],
            DeviceKind::Vsource { .. } => {
                let i = op.branch_current(id).unwrap_or(0.0);
                vec![i, -i]
            }
            DeviceKind::Isource {
                pos: _,
                neg: _,
                waveform,
            } => {
                let i = self.source_value(id, waveform, None);
                vec![i, -i]
            }
            DeviceKind::Diode {
                anode,
                cathode,
                params,
            } => {
                let (i, _) = diode_eval(v(*anode) - v(*cathode), params);
                vec![i, -i]
            }
            DeviceKind::Mosfet {
                d,
                g,
                s,
                b,
                ty,
                params,
            } => {
                let ch = mosfet_eval(v(*g) - v(*s), v(*d) - v(*s), v(*b) - v(*s), *ty, params);
                let jp = DiodeParams {
                    is: params.is_leak,
                    n: 1.0,
                };
                let (jd, js, sign) = match ty {
                    dotm_netlist::MosType::Nmos => {
                        let (ibd, _) = diode_eval(v(*b) - v(*d), &jp);
                        let (ibs, _) = diode_eval(v(*b) - v(*s), &jp);
                        (ibd, ibs, 1.0)
                    }
                    dotm_netlist::MosType::Pmos => {
                        let (idb, _) = diode_eval(v(*d) - v(*b), &jp);
                        let (isb, _) = diode_eval(v(*s) - v(*b), &jp);
                        (idb, isb, -1.0)
                    }
                };
                // Terminal currents into the device: drain, gate, source, bulk.
                let i_d = ch.ids - sign * jd;
                let i_g = 0.0;
                let i_s = -ch.ids - sign * js;
                let i_b = sign * (jd + js);
                vec![i_d, i_g, i_s, i_b]
            }
            DeviceKind::Switch {
                a,
                b,
                cp,
                cn,
                params,
            } => {
                let (g, _) = switch_eval(v(*cp) - v(*cn), params);
                let i = g * (v(*a) - v(*b));
                vec![i, -i, 0.0, 0.0]
            }
        })
    }
}
