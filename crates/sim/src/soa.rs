//! Lockstep SoA kernels: blocked multi-matrix LU over the variant
//! lanes of one fault class.
//!
//! Every variant of a fault class shares the nominal assembly baseline,
//! the same dimensions and the same sparsity — each differs only by an
//! appended stamp delta. The campaign's class-evaluation hot path used
//! to pay a full assembly replay plus a full dense LU per variant
//! anyway, because each variant was measured by its own `Simulator`.
//!
//! This module provides the shared half of the lockstep path
//! (`DOTM_VARIANT_LOCKSTEP`): the caller captures, per variant lane,
//! the exact linear system the first Newton iteration of that lane's
//! DC operating-point solve would assemble ([`LaneSystem`], built by
//! `Simulator::lockstep_capture`), and [`prime_lanes`] factors all
//! captured lanes in one blocked pass. The result per lane is a
//! [`LanePrime`]: the assembled `(A, z)` system plus its LU factors,
//! which the measuring simulator *adopts* on its first Newton
//! iteration — if and only if every precondition of that iteration
//! matches the capture bitwise — instead of re-assembling and
//! re-factoring.
//!
//! ## Lane layout
//!
//! [`factor_lanes`] packs the `K` lane matrices into one blocked
//! `[cell][lane]` buffer: cell `c` (row-major index into the dense
//! matrix) of lane `l` lives at `c * K + l`. The elimination walks
//! cells exactly like `LuFactors::refactor` and keeps the lane loop
//! innermost, so the hot update `v[i][j] -= f · v[k][j]` runs over `K`
//! adjacent doubles — an auto-vectorizable strip — while every lane's
//! *per-lane* arithmetic (pivot search order, swap, division, the
//! `factor == 0.0` row skip, subtraction order over `j`) is operation
//! for operation the scalar kernel's. No arithmetic ever crosses
//! lanes, so each lane's factors are bitwise identical to a scalar
//! `refactor` of that lane's matrix.
//!
//! ## Fallback rules
//!
//! A lane leaves the lockstep path — and is measured by the untouched
//! scalar code — whenever anything about it diverges:
//!
//! - capture refused (source overrides active, or the harness never
//!   opted in): no [`LaneSystem`], no prime;
//! - rewired (non-append-only) variants that change the unknown count:
//!   [`prime_lanes`] groups lanes by dimension, so an odd-dimension
//!   lane simply factors in its own (possibly singleton) group;
//! - singular lane: the blocked kernel marks just that lane dead with
//!   the same `SingularInfo` the scalar test would produce and carries
//!   the others on; the dead lane gets no prime and the measuring
//!   simulator re-discovers the singularity through the scalar path
//!   (identical stats, identical escalation);
//! - adoption-time divergence (different seed, different gmin, a
//!   transient initial point, an escalated rung): the measuring
//!   simulator's guards refuse the prime and fall through to the
//!   scalar assemble + factor.
//!
//! Because adoption replaces bit-identical work (same `A`, same `z`,
//! same factors, same shared `solve` routine) and every divergence
//! falls back to the scalar path, the lockstep knob is bitwise
//! invisible in every deterministic artifact.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::matrix::{LuFactors, SingularInfo};

/// The exact linear system the first Newton iteration of a DC
/// operating-point solve would assemble for one variant lane, captured
/// by `Simulator::lockstep_capture` on a scratch simulator.
#[derive(Debug, Clone)]
pub struct LaneSystem {
    /// The iterate the first iteration assembles at: the warm DC seed
    /// if one was installed, else all zeros.
    pub(crate) x0: Vec<f64>,
    /// The gmin the capture assembled with (the lane's base options
    /// gmin — escalated rungs never match and solve scalar).
    pub(crate) gmin: f64,
    /// Row-major entries of the assembled MNA matrix.
    pub(crate) entries: Vec<f64>,
    /// The assembled RHS.
    pub(crate) z: Vec<f64>,
}

impl LaneSystem {
    /// Builds a capture; `entries` must be `z.len()²` long.
    pub(crate) fn new(x0: Vec<f64>, gmin: f64, entries: Vec<f64>, z: Vec<f64>) -> Self {
        debug_assert_eq!(entries.len(), z.len() * z.len());
        debug_assert_eq!(x0.len(), z.len());
        LaneSystem {
            x0,
            gmin,
            entries,
            z,
        }
    }

    /// Number of unknowns.
    pub fn dim(&self) -> usize {
        self.z.len()
    }
}

/// A primed first Newton iteration for one variant lane: the captured
/// system plus its blocked-kernel LU factors, ready for adoption by
/// the measuring simulator (`Simulator::install_lane_prime`).
#[derive(Debug, Clone)]
pub struct LanePrime {
    pub(crate) x0: Vec<f64>,
    pub(crate) gmin: f64,
    pub(crate) entries: Vec<f64>,
    pub(crate) z: Vec<f64>,
    pub(crate) lu: LuFactors,
}

impl LanePrime {
    /// Number of unknowns.
    pub fn dim(&self) -> usize {
        self.z.len()
    }
}

/// Factors `K` same-dimension matrices (row-major, each `dim²` long)
/// in one blocked `[cell][lane]` pass.
///
/// Per lane the arithmetic — pivot search, scale-relative singularity
/// test, row interchange, multipliers, the `factor == 0.0` row skip and
/// the update subtraction order — is operation for operation identical
/// to [`LuFactors::refactor`], so each returned factorisation is
/// bitwise equal to a scalar refactor of that lane alone. A singular
/// lane returns the same `Err` the scalar kernel would and does not
/// perturb the other lanes.
///
/// # Panics
/// Panics if any lane's length differs from `dim²`.
pub fn factor_lanes(dim: usize, lanes: &[&[f64]]) -> Vec<Result<LuFactors, SingularInfo>> {
    let n = dim;
    let nl = lanes.len();
    for lane in lanes {
        assert_eq!(lane.len(), n * n, "lane matrix size mismatch");
    }
    // Pack [cell][lane]. The two-lane case (catastrophic + near-miss
    // severities of the same class) is by far the common block shape, so
    // it gets a sequential-write specialisation; the generic path writes
    // lane-strided.
    let mut v: Vec<f64>;
    if nl == 2 {
        v = Vec::with_capacity(n * n * 2);
        for (&a, &b) in lanes[0].iter().zip(lanes[1]) {
            v.push(a);
            v.push(b);
        }
    } else {
        v = vec![0.0f64; n * n * nl];
        for (l, lane) in lanes.iter().enumerate() {
            for (c, &x) in lane.iter().enumerate() {
                v[c * nl + l] = x;
            }
        }
    }
    let mut piv = vec![0usize; n * nl];
    let mut dead: Vec<Option<SingularInfo>> = vec![None; nl];
    let mut factors = vec![0.0f64; nl];
    let mut pidx = vec![0usize; nl];
    let mut pmax = vec![0.0f64; nl];
    let mut cmax = vec![0.0f64; nl];
    let mut pivots = vec![0.0f64; nl];
    for k in 0..n {
        // Pivot selection and the scale-relative singularity test. The
        // column walk is stride-`n·nl` (one cache line per row), so the
        // lane loop goes innermost: all lanes' candidates sit in the
        // same line and both scans cost one strided pass total instead
        // of one per lane. Per lane the comparison order — strict `>`
        // downward from the diagonal, first maximum wins — is exactly
        // the scalar kernel's.
        let diag = &v[(k * n + k) * nl..(k * n + k) * nl + nl];
        for l in 0..nl {
            pidx[l] = k;
            pmax[l] = diag[l].abs();
        }
        for i in (k + 1)..n {
            let row = &v[(i * n + k) * nl..(i * n + k) * nl + nl];
            for l in 0..nl {
                let m = row[l].abs();
                if m > pmax[l] {
                    pmax[l] = m;
                    pidx[l] = i;
                }
            }
        }
        cmax.copy_from_slice(&pmax);
        for i in 0..k {
            let row = &v[(i * n + k) * nl..(i * n + k) * nl + nl];
            for l in 0..nl {
                cmax[l] = cmax[l].max(row[l].abs());
            }
        }
        // The verdicts, swaps and pivot loads stay per lane (a dead
        // lane's garbage scan results are simply never read).
        for l in 0..nl {
            if dead[l].is_some() {
                pivots[l] = 1.0;
                continue;
            }
            if pmax[l].is_nan() || pmax[l] <= cmax[l] * 1e-14 {
                dead[l] = Some(SingularInfo {
                    col: k,
                    pivot_mag: pmax[l],
                });
                pivots[l] = 1.0;
                continue;
            }
            let p = pidx[l];
            piv[k * nl + l] = p;
            if p != k {
                for j in 0..n {
                    v.swap((k * n + j) * nl + l, (p * n + j) * nl + l);
                }
            }
            pivots[l] = v[(k * n + k) * nl + l];
        }
        let any_dead = dead.iter().any(Option::is_some);
        // Elimination. The multipliers are computed per lane (dead
        // lanes pinned to 0.0 so they self-skip); the row update keeps
        // the lane loop innermost over contiguous doubles. The two-lane
        // block gets a branch-light specialisation: explicit locals, no
        // per-row slice juggling, one skip test for the (dominant)
        // all-zero-multiplier rows.
        if nl == 2 && !any_dead {
            let p0 = pivots[0];
            let p1 = pivots[1];
            let kb = (k * n + k + 1) * 2;
            let len = (n - k - 1) * 2;
            for i in (k + 1)..n {
                let ib = (i * n + k) * 2;
                let f0 = v[ib] / p0;
                let f1 = v[ib + 1] / p1;
                v[ib] = f0;
                v[ib + 1] = f1;
                if f0 == 0.0 && f1 == 0.0 {
                    continue;
                }
                let (head, tail) = v.split_at_mut(ib + 2);
                let krow = &head[kb..kb + len];
                let irow = &mut tail[..len];
                if f0 != 0.0 && f1 != 0.0 {
                    let mut xi = irow.chunks_exact_mut(4);
                    let mut yi = krow.chunks_exact(4);
                    for (x, y) in (&mut xi).zip(&mut yi) {
                        x[0] -= f0 * y[0];
                        x[1] -= f1 * y[1];
                        x[2] -= f0 * y[2];
                        x[3] -= f1 * y[3];
                    }
                    if let ([a, b], [c, d]) = (xi.into_remainder(), yi.remainder()) {
                        *a -= f0 * c;
                        *b -= f1 * d;
                    }
                } else {
                    // One lane's multiplier underflowed to zero: that
                    // lane must skip the row exactly like the scalar
                    // kernel, so only the live lane updates.
                    let (f, off) = if f0 != 0.0 { (f0, 0) } else { (f1, 1) };
                    let mut c = off;
                    while c < len {
                        irow[c] -= f * krow[c];
                        c += 2;
                    }
                }
            }
            continue;
        }
        for i in (k + 1)..n {
            let mut all_nonzero = true;
            let mut any_nonzero = false;
            let ib = (i * n + k) * nl;
            let row = &mut v[ib..ib + nl];
            for l in 0..nl {
                let f = if any_dead && dead[l].is_some() {
                    0.0
                } else {
                    let f = row[l] / pivots[l];
                    row[l] = f;
                    f
                };
                factors[l] = f;
                if f == 0.0 {
                    all_nonzero = false;
                } else {
                    any_nonzero = true;
                }
            }
            if !any_nonzero {
                continue;
            }
            // Both rows' trailing strips (columns k+1..n, all lanes) are
            // contiguous, and i > k puts the pivot row strictly before
            // the updated row — one split serves the whole row update.
            let len = (n - k - 1) * nl;
            let kb = (k * n + k + 1) * nl;
            let ib = (i * n + k + 1) * nl;
            let (head, tail) = v.split_at_mut(ib);
            let krow = &head[kb..kb + len];
            let irow = &mut tail[..len];
            if all_nonzero {
                // Hot path: every lane updates this row. Per lane the
                // update order over j is ascending, exactly the scalar
                // kernel's; lanes never mix.
                if nl == 2 {
                    let f0 = factors[0];
                    let f1 = factors[1];
                    // Two lane pairs per iteration so the compiler can
                    // keep a full [f0, f1, f0, f1] vector in flight.
                    let mut xi = irow.chunks_exact_mut(4);
                    let mut yi = krow.chunks_exact(4);
                    for (x, y) in (&mut xi).zip(&mut yi) {
                        x[0] -= f0 * y[0];
                        x[1] -= f1 * y[1];
                        x[2] -= f0 * y[2];
                        x[3] -= f1 * y[3];
                    }
                    if let ([a, b], [c, d]) = (xi.into_remainder(), yi.remainder()) {
                        *a -= f0 * c;
                        *b -= f1 * d;
                    }
                } else {
                    for (x, y) in irow.chunks_exact_mut(nl).zip(krow.chunks_exact(nl)) {
                        for ((x, &f), &y) in x.iter_mut().zip(&factors).zip(y) {
                            *x -= f * y;
                        }
                    }
                }
            } else {
                // Mixed row: replay each updating lane alone, exactly
                // the scalar `factor == 0.0` skip semantics (a zero
                // multiplier must not turn a later `inf · 0` into NaN).
                for (l, &f) in factors.iter().enumerate() {
                    if f == 0.0 {
                        continue;
                    }
                    let mut c = l;
                    while c < len {
                        irow[c] -= f * krow[c];
                        c += nl;
                    }
                }
            }
        }
    }
    // Unpack each surviving lane into a standalone factorisation
    // (sequential read for the common two-lane block).
    if nl == 2 && dead.iter().all(Option::is_none) {
        let mut lu0 = Vec::with_capacity(n * n);
        let mut lu1 = Vec::with_capacity(n * n);
        for pair in v.chunks_exact(2) {
            lu0.push(pair[0]);
            lu1.push(pair[1]);
        }
        return [lu0, lu1]
            .into_iter()
            .enumerate()
            .map(|(l, lu)| {
                let p = (0..n).map(|k| piv[k * nl + l]).collect();
                Ok(LuFactors::from_parts(n, lu, p))
            })
            .collect();
    }
    (0..nl)
        .map(|l| {
            if let Some(info) = dead[l] {
                return Err(info);
            }
            let mut lu = vec![0.0f64; n * n];
            for (c, slot) in lu.iter_mut().enumerate() {
                *slot = v[c * nl + l];
            }
            let p = (0..n).map(|k| piv[k * nl + l]).collect();
            Ok(LuFactors::from_parts(n, lu, p))
        })
        .collect()
}

/// Factors every captured lane system through the blocked kernel and
/// wraps the survivors as adoption-ready primes.
///
/// Lanes are grouped by dimension (variants of one class share
/// dimensions unless a rewired variant changed the unknown count), so
/// an odd-dimension lane factors in its own group rather than poisoning
/// the block. Slots whose capture was refused (`None`) or whose matrix
/// is singular come back `None` — those lanes measure through the
/// untouched scalar path.
pub fn prime_lanes(systems: Vec<Option<LaneSystem>>) -> Vec<Option<Arc<LanePrime>>> {
    let mut out: Vec<Option<Arc<LanePrime>>> = (0..systems.len()).map(|_| None).collect();
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, s) in systems.iter().enumerate() {
        if let Some(s) = s {
            groups.entry(s.dim()).or_default().push(i);
        }
    }
    let mut systems = systems;
    for (dim, idxs) in groups {
        let factored = {
            let mats: Vec<&[f64]> = idxs
                .iter()
                .map(|&i| {
                    systems[i]
                        .as_ref()
                        .expect("grouped slot")
                        .entries
                        .as_slice()
                })
                .collect();
            factor_lanes(dim, &mats)
        };
        for (&slot, res) in idxs.iter().zip(factored) {
            if let Ok(lu) = res {
                let s = systems[slot].take().expect("grouped slot");
                out[slot] = Some(Arc::new(LanePrime {
                    x0: s.x0,
                    gmin: s.gmin,
                    entries: s.entries,
                    z: s.z,
                    lu,
                }));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DenseMatrix;

    /// Deterministic LCG — the workspace has no external deps and these
    /// tests only need reproducible, pivot-provoking fill.
    struct Lcg(u64);
    impl Lcg {
        fn next_f64(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Spread magnitudes over ~6 decades so pivot choices differ
            // between lanes.
            let u = (self.0 >> 11) as f64 / (1u64 << 53) as f64;
            let mag = 10f64.powf((self.0 >> 7) as f64 % 7.0 - 3.0);
            (u - 0.5) * mag
        }
    }

    fn dense(n: usize, data: &[f64]) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(n);
        m.entries_mut().copy_from_slice(data);
        m
    }

    fn assert_lane_matches_scalar(n: usize, data: &[f64], got: &LuFactors) {
        let mut scalar = LuFactors::new();
        scalar.refactor(&dense(n, data)).expect("scalar refactor");
        let (sn, slu, spiv) = scalar.parts();
        let (gn, glu, gpiv) = got.parts();
        assert_eq!(sn, gn);
        assert_eq!(spiv, gpiv, "pivot sequence diverged");
        for (i, (a, b)) in slu.iter().zip(glu.iter()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "factor cell {i} diverged");
        }
    }

    #[test]
    fn blocked_factors_match_scalar_bitwise() {
        let n = 13;
        let mut rng = Lcg(0xD07);
        let lanes: Vec<Vec<f64>> = (0..5)
            .map(|l| {
                (0..n * n)
                    .map(|c| {
                        let x = rng.next_f64();
                        // Strengthen each lane's diagonal differently so
                        // every lane picks a different pivot sequence.
                        if c % (n + 1) == 0 {
                            x + (l as f64 + 1.0) * 3.0
                        } else {
                            x
                        }
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = lanes.iter().map(Vec::as_slice).collect();
        let out = factor_lanes(n, &refs);
        assert_eq!(out.len(), lanes.len());
        for (lane, res) in lanes.iter().zip(&out) {
            let lu = res.as_ref().expect("nonsingular lane");
            assert_lane_matches_scalar(n, lane, lu);
        }
    }

    #[test]
    fn zero_multiplier_rows_skip_like_scalar() {
        // Upper-triangular-ish lanes: everything below the diagonal is
        // 0.0 or -0.0, so every multiplier hits the `factor == 0.0`
        // skip; one dense lane rides along in the same block.
        let n = 6;
        let mut rng = Lcg(41);
        let mut tri = vec![0.0f64; n * n];
        for r in 0..n {
            for c in 0..n {
                if c > r {
                    tri[r * n + c] = rng.next_f64();
                } else if c == r {
                    tri[r * n + c] = 1.0 + rng.next_f64().abs();
                } else if (r + c) % 2 == 0 {
                    tri[r * n + c] = -0.0;
                }
            }
        }
        let dense_lane: Vec<f64> = (0..n * n)
            .map(|c| rng.next_f64() + if c % (n + 1) == 0 { 4.0 } else { 0.0 })
            .collect();
        let out = factor_lanes(n, &[&tri, &dense_lane]);
        assert_lane_matches_scalar(n, &tri, out[0].as_ref().expect("tri lane"));
        assert_lane_matches_scalar(n, &dense_lane, out[1].as_ref().expect("dense lane"));
    }

    #[test]
    fn singular_lane_dies_alone_with_scalar_error() {
        let n = 5;
        let mut rng = Lcg(7);
        let good: Vec<Vec<f64>> = (0..2)
            .map(|l| {
                (0..n * n)
                    .map(|c| {
                        rng.next_f64()
                            + if c % (n + 1) == 0 {
                                2.0 + l as f64
                            } else {
                                0.0
                            }
                    })
                    .collect()
            })
            .collect();
        // Middle lane: column 2 identically zero below and at the
        // diagonal once eliminated — scalar reports singular at col 2.
        let mut bad = good[0].clone();
        for r in 0..n {
            bad[r * n + 2] = 0.0;
        }
        let out = factor_lanes(n, &[&good[0], &bad, &good[1]]);
        assert_lane_matches_scalar(n, &good[0], out[0].as_ref().expect("lane 0"));
        assert_lane_matches_scalar(n, &good[1], out[2].as_ref().expect("lane 2"));
        let got_err = out[1].as_ref().expect_err("singular lane");
        let mut scalar = LuFactors::new();
        let want_err = scalar
            .refactor(&dense(n, &bad))
            .expect_err("scalar singular");
        assert_eq!(*got_err, want_err);
    }

    #[test]
    fn single_lane_group_matches_scalar() {
        let n = 9;
        let mut rng = Lcg(99);
        let lane: Vec<f64> = (0..n * n)
            .map(|c| rng.next_f64() + if c % (n + 1) == 0 { 3.0 } else { 0.0 })
            .collect();
        let out = factor_lanes(n, &[&lane]);
        assert_lane_matches_scalar(n, &lane, out[0].as_ref().expect("lane"));
    }

    /// Replays real campaign matrices dumped to `/tmp/soa_dump.bin`
    /// (format: u64 n, u64 nl, then nl × n² f64 LE) to compare the
    /// blocked kernel against per-lane scalar refactorisation on
    /// representative fill. Dev-only timing aid, never run in CI.
    #[test]
    #[ignore]
    fn bench_blocked_vs_scalar_dumped() {
        let bytes = match std::fs::read("/tmp/soa_dump.bin") {
            Ok(b) => b,
            Err(_) => return,
        };
        let rd_u64 = |off: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[off..off + 8]);
            u64::from_le_bytes(b)
        };
        let n = rd_u64(0) as usize;
        let nl = rd_u64(8) as usize;
        let mut lanes: Vec<Vec<f64>> = Vec::new();
        let mut off = 16;
        for _ in 0..nl {
            let lane: Vec<f64> = (0..n * n)
                .map(|c| f64::from_bits(rd_u64(off + c * 8)))
                .collect();
            off += n * n * 8;
            lanes.push(lane);
        }
        let refs: Vec<&[f64]> = lanes.iter().map(|l| l.as_slice()).collect();
        let reps = 20;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            let out = factor_lanes(n, &refs);
            assert!(out.iter().all(Result::is_ok));
        }
        let blocked = t0.elapsed().as_secs_f64() / reps as f64;
        let t1 = std::time::Instant::now();
        for _ in 0..reps {
            for lane in &lanes {
                let mut f = LuFactors::new();
                f.refactor(&dense(n, lane)).expect("scalar");
            }
        }
        let scalar = t1.elapsed().as_secs_f64() / reps as f64;
        let t2 = std::time::Instant::now();
        for _ in 0..reps {
            for lane in &lanes {
                let out = factor_lanes(n, &[lane.as_slice()]);
                assert!(out[0].is_ok());
            }
        }
        let single = t2.elapsed().as_secs_f64() / reps as f64;
        eprintln!(
            "dumped n={n} nl={nl}: blocked {:.3}ms scalar {:.3}ms single-lane-blocked {:.3}ms \
             ratio {:.2}",
            blocked * 1e3,
            scalar * 1e3,
            single * 1e3,
            blocked / scalar
        );
    }

    #[test]
    fn prime_lanes_groups_by_dim_and_skips_refusals() {
        let mk = |n: usize, seed: u64| {
            let mut rng = Lcg(seed);
            let entries: Vec<f64> = (0..n * n)
                .map(|c| rng.next_f64() + if c % (n + 1) == 0 { 3.0 } else { 0.0 })
                .collect();
            LaneSystem::new(vec![0.0; n], 1e-12, entries, vec![1.0; n])
        };
        let sys = vec![Some(mk(4, 1)), None, Some(mk(6, 2)), Some(mk(4, 3))];
        let entries_of = |s: &Option<LaneSystem>| s.as_ref().unwrap().entries.clone();
        let (e0, e2, e3) = (
            entries_of(&sys[0]),
            entries_of(&sys[2]),
            entries_of(&sys[3]),
        );
        let primes = prime_lanes(sys);
        assert_eq!(primes.len(), 4);
        assert!(primes[1].is_none(), "refused capture must stay unprimed");
        for (slot, (n, entries)) in [(0, (4, e0)), (2, (6, e2)), (3, (4, e3))] {
            let p = primes[slot].as_ref().expect("primed lane");
            assert_eq!(p.dim(), n);
            assert_lane_matches_scalar(n, &entries, &p.lu);
        }
    }
}
