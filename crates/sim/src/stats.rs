//! Solver telemetry: a cheap counter accumulator carried by
//! [`crate::Simulator`].
//!
//! Every analysis records how hard the solver had to work — Newton
//! iterations, which homotopy finally converged, transient step halvings,
//! singular pivots. The defect-oriented pipeline aggregates these per
//! fault class so a report can state *how* its numbers were obtained
//! (and, crucially, how often the solver failed) instead of silently
//! folding solver failures into detection statistics.
//!
//! All counters are plain saturating-free `u64` additions of per-solve
//! quantities that are themselves pure functions of the netlist and the
//! options, so accumulated telemetry is bit-identical for every thread
//! count.

use std::ops::AddAssign;

/// Accumulated solver-effort counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Newton–Raphson solves attempted (each homotopy step counts one).
    pub nr_solves: u64,
    /// Total Newton–Raphson iterations across all solves.
    pub nr_iterations: u64,
    /// DC solves that converged with plain Newton–Raphson.
    pub converged_plain: u64,
    /// DC solves that needed the gmin-stepping homotopy.
    pub converged_gmin: u64,
    /// DC solves that needed the source-stepping homotopy.
    pub converged_source: u64,
    /// DC solves that failed every homotopy.
    pub dc_failures: u64,
    /// Newton solves aborted on a singular matrix or a non-finite update.
    pub singular_pivots: u64,
    /// Newton solves that exhausted the iteration limit.
    pub maxiter_exhausted: u64,
    /// Transient time steps accepted.
    pub tran_steps: u64,
    /// Transient Newton attempts rejected (non-convergence or singularity
    /// at a trial step).
    pub rejected_steps: u64,
    /// Transient step halvings performed after a rejected step.
    pub step_halvings: u64,
    /// DC solves where a warm-start seed converged directly (also counted
    /// in [`SimStats::converged_plain`]).
    pub warm_hits: u64,
    /// DC solves where a warm-start seed failed and the cold homotopy
    /// chain ran instead.
    pub warm_misses: u64,
    /// Newton linear solves served by a reused factorisation — either an
    /// exact factor-cache hit (identical matrix) or a successful rank-k
    /// update against the nominal factors — instead of a fresh `O(n³)`
    /// factorisation.
    pub factor_reuse_hits: u64,
    /// Rank-update attempts abandoned for an ill-conditioned or
    /// inaccurate update, falling back to a full refactorisation. (Deltas
    /// that are simply not low-rank are plain misses, not fallbacks.)
    pub factor_refactor_fallbacks: u64,
}

impl SimStats {
    /// Counter names, index-aligned with [`SimStats::to_words`] — the
    /// stable naming used when the telemetry is folded into the
    /// observability counter registry.
    pub const WORD_NAMES: [&'static str; 15] = [
        "nr_solves",
        "nr_iterations",
        "converged_plain",
        "converged_gmin",
        "converged_source",
        "dc_failures",
        "singular_pivots",
        "maxiter_exhausted",
        "tran_steps",
        "rejected_steps",
        "step_halvings",
        "warm_hits",
        "warm_misses",
        "factor_reuse_hits",
        "factor_refactor_fallbacks",
    ];

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &SimStats) {
        *self += *other;
    }

    /// `true` if no counter has been touched.
    pub fn is_empty(&self) -> bool {
        *self == SimStats::default()
    }

    /// The counters as a fixed word vector, in declaration order — the
    /// stable serialisation used by report fingerprints.
    pub fn to_words(&self) -> [u64; 15] {
        [
            self.nr_solves,
            self.nr_iterations,
            self.converged_plain,
            self.converged_gmin,
            self.converged_source,
            self.dc_failures,
            self.singular_pivots,
            self.maxiter_exhausted,
            self.tran_steps,
            self.rejected_steps,
            self.step_halvings,
            self.warm_hits,
            self.warm_misses,
            self.factor_reuse_hits,
            self.factor_refactor_fallbacks,
        ]
    }
}

impl AddAssign for SimStats {
    fn add_assign(&mut self, o: SimStats) {
        self.nr_solves += o.nr_solves;
        self.nr_iterations += o.nr_iterations;
        self.converged_plain += o.converged_plain;
        self.converged_gmin += o.converged_gmin;
        self.converged_source += o.converged_source;
        self.dc_failures += o.dc_failures;
        self.singular_pivots += o.singular_pivots;
        self.maxiter_exhausted += o.maxiter_exhausted;
        self.tran_steps += o.tran_steps;
        self.rejected_steps += o.rejected_steps;
        self.step_halvings += o.step_halvings;
        self.warm_hits += o.warm_hits;
        self.warm_misses += o.warm_misses;
        self.factor_reuse_hits += o.factor_reuse_hits;
        self.factor_refactor_fallbacks += o.factor_refactor_fallbacks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = SimStats {
            nr_solves: 1,
            nr_iterations: 10,
            ..SimStats::default()
        };
        let b = SimStats {
            nr_solves: 2,
            step_halvings: 3,
            ..SimStats::default()
        };
        a.merge(&b);
        assert_eq!(a.nr_solves, 3);
        assert_eq!(a.nr_iterations, 10);
        assert_eq!(a.step_halvings, 3);
        assert!(!a.is_empty());
        assert!(SimStats::default().is_empty());
    }

    #[test]
    fn words_cover_every_counter() {
        let s = SimStats {
            nr_solves: 1,
            nr_iterations: 2,
            converged_plain: 3,
            converged_gmin: 4,
            converged_source: 5,
            dc_failures: 6,
            singular_pivots: 7,
            maxiter_exhausted: 8,
            tran_steps: 9,
            rejected_steps: 10,
            step_halvings: 11,
            warm_hits: 12,
            warm_misses: 13,
            factor_reuse_hits: 14,
            factor_refactor_fallbacks: 15,
        };
        assert_eq!(
            s.to_words(),
            [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15]
        );
        assert_eq!(SimStats::WORD_NAMES.len(), s.to_words().len());
    }
}
