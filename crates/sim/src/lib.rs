//! # dotm-sim — a SPICE-class analog circuit simulator
//!
//! The defect-oriented test methodology of the 1995 DATE paper needs
//! circuit-level fault simulation of analog macro cells: DC operating
//! points, DC sweeps (comparator trip points, ladder taps) and clocked
//! transients (the three-phase comparator). No mature analog simulator
//! bindings exist for Rust, so this crate implements one from scratch:
//!
//! * **Modified nodal analysis** over the devices of a
//!   [`dotm_netlist::Netlist`], with independent-source branch currents as
//!   extra unknowns.
//! * **Dense LU** with partial pivoting — macro cells are ≤ a few hundred
//!   unknowns, where dense factorisation outperforms sparse bookkeeping.
//! * **Newton–Raphson** with per-iteration voltage-step limiting, plus
//!   *gmin stepping* and *source stepping* homotopies for hard operating
//!   points (fault-injected circuits are routinely pathological).
//! * **Device models**: Level-1 (Shichman–Hodges) MOSFETs with body effect,
//!   channel-length modulation and bulk-junction leakage diodes; junction
//!   diodes; voltage-controlled switches; R, C, V, I.
//! * **Transient analysis** with trapezoidal integration (backward-Euler
//!   start-up) and automatic step halving on non-convergence.
//!
//! ## Example: inverter transfer curve
//!
//! ```
//! use dotm_netlist::{MosType, MosfetParams, Netlist, Waveform};
//! use dotm_sim::Simulator;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nl = Netlist::new("inv");
//! let vdd = nl.node("vdd");
//! let vin = nl.node("in");
//! let out = nl.node("out");
//! let gnd = Netlist::GROUND;
//! nl.add_vsource("VDD", vdd, gnd, Waveform::dc(5.0))?;
//! nl.add_vsource("VIN", vin, gnd, Waveform::dc(0.0))?;
//! nl.add_mosfet("MP", out, vin, vdd, vdd, MosType::Pmos, MosfetParams::pmos_default())?;
//! nl.add_mosfet("MN", out, vin, gnd, gnd, MosType::Nmos, MosfetParams::nmos_default())?;
//! let mut sim = Simulator::new(&nl);
//! let ops = sim.dc_sweep("VIN", &[0.0, 2.5, 5.0])?;
//! assert!(ops[0].voltage(out) > 4.9); // input low → output high
//! assert!(ops[2].voltage(out) < 0.1); // input high → output low
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ac;
mod batch;
mod engine;
mod error;
mod factor;
mod matrix;
mod models;
pub mod soa;
mod stats;

pub use ac::{log_sweep, AcResult, Complex};
pub use batch::SharedAssembly;
pub use engine::{Integration, OpPoint, SimOptions, Simulator, TranResult};
pub use error::SimError;
pub use factor::{NominalFactors, SmwOutcome, SmwPlan, SMW_MAX_RANK, SMW_RESIDUAL_RTOL};
pub use matrix::{DenseMatrix, LuFactors, SingularInfo};
pub use models::{diode_eval, mosfet_eval, switch_eval, MosChannel, VT_THERMAL};
pub use soa::{LanePrime, LaneSystem};
pub use stats::SimStats;
