//! Nonlinear device model evaluation.
//!
//! Pure functions mapping terminal voltages to currents and small-signal
//! conductances. The Level-1 (Shichman–Hodges) MOSFET model is sufficient
//! for the defect signatures this workspace reproduces: DC levels,
//! comparator trip points and quiescent currents (see DESIGN.md §1).

use dotm_netlist::{DiodeParams, MosType, MosfetParams, SwitchParams};

/// Thermal voltage kT/q at 300 K.
pub const VT_THERMAL: f64 = 0.02585;

/// Exponent clamp for junction laws: beyond this the exponential is
/// linearised so Newton iterations cannot overflow.
const EXP_CLAMP: f64 = 40.0;

/// Evaluates a junction diode at voltage `vd` (anode minus cathode).
///
/// Returns `(id, gd)`: the diode current and its derivative. The
/// exponential is linearised above `EXP_CLAMP·n·Vt` so the function is
/// finite and continuously differentiable for all inputs.
pub fn diode_eval(vd: f64, params: &DiodeParams) -> (f64, f64) {
    let nvt = params.n * VT_THERMAL;
    let x = vd / nvt;
    if x > EXP_CLAMP {
        let e = EXP_CLAMP.exp();
        let id = params.is * (e * (1.0 + (x - EXP_CLAMP)) - 1.0);
        let gd = params.is * e / nvt;
        (id, gd)
    } else {
        let e = x.exp();
        let id = params.is * (e - 1.0);
        // Keep a floor on gd so deeply reverse-biased junctions still
        // contribute a tiny conductance (numerical robustness).
        let gd = (params.is * e / nvt).max(1e-15);
        (id, gd)
    }
}

/// Channel evaluation result for a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosChannel {
    /// Drain-to-source current (A), positive into the drain for NMOS
    /// conduction.
    pub ids: f64,
    /// ∂ids/∂vgs.
    pub gm: f64,
    /// ∂ids/∂vds.
    pub gds: f64,
    /// ∂ids/∂vbs.
    pub gmbs: f64,
}

/// Evaluates the Level-1 channel current of a MOSFET.
///
/// `vgs`, `vds`, `vbs` are the *device-polarity* terminal voltages (drain,
/// gate, bulk relative to source). Handles both polarities and the
/// `vds < 0` source/drain role reversal internally.
pub fn mosfet_eval(vgs: f64, vds: f64, vbs: f64, ty: MosType, p: &MosfetParams) -> MosChannel {
    match ty {
        MosType::Nmos => nmos_eval(vgs, vds, vbs, p, p.vt0),
        MosType::Pmos => {
            // Evaluate the mirrored N-device and negate the current. With
            // ids_p(v) = -ids_n(-v), the partials keep their sign.
            let m = nmos_eval(-vgs, -vds, -vbs, p, -p.vt0);
            MosChannel {
                ids: -m.ids,
                gm: m.gm,
                gds: m.gds,
                gmbs: m.gmbs,
            }
        }
    }
}

fn nmos_eval(vgs: f64, vds: f64, vbs: f64, p: &MosfetParams, vt0: f64) -> MosChannel {
    if vds >= 0.0 {
        nmos_eval_forward(vgs, vds, vbs, p, vt0)
    } else {
        // Source and drain exchange roles: ids(v) = -i'(vgd, -vds, vbd).
        let m = nmos_eval_forward(vgs - vds, -vds, vbs - vds, p, vt0);
        MosChannel {
            ids: -m.ids,
            gm: -m.gm,
            gds: m.gm + m.gds + m.gmbs,
            gmbs: -m.gmbs,
        }
    }
}

fn nmos_eval_forward(vgs: f64, vds: f64, vbs: f64, p: &MosfetParams, vt0: f64) -> MosChannel {
    debug_assert!(vds >= 0.0);
    let beta = p.kp * p.w / p.l;
    // Body effect with clamped square roots: for vbs >= phi the argument
    // would go negative; clamp and zero the derivative there.
    let (vt, dvt_dvbs) = {
        let arg = p.phi - vbs;
        if arg > 1e-9 {
            let sq = arg.sqrt();
            (vt0 + p.gamma * (sq - p.phi.sqrt()), -p.gamma / (2.0 * sq))
        } else {
            (vt0 + p.gamma * (0.0 - p.phi.sqrt()), 0.0)
        }
    };
    let vov = vgs - vt;
    if vov <= 0.0 {
        // Cutoff. A tiny residual output conductance helps Newton.
        return MosChannel {
            ids: 0.0,
            gm: 0.0,
            gds: 1e-12,
            gmbs: 0.0,
        };
    }
    let clm = 1.0 + p.lambda * vds;
    if vds >= vov {
        // Saturation.
        let ids0 = 0.5 * beta * vov * vov;
        let ids = ids0 * clm;
        let gm = beta * vov * clm;
        let gds = ids0 * p.lambda;
        MosChannel {
            ids,
            gm,
            gds,
            gmbs: gm * (-dvt_dvbs),
        }
    } else {
        // Triode.
        let ids0 = beta * (vov - 0.5 * vds) * vds;
        let ids = ids0 * clm;
        let gm = beta * vds * clm;
        let gds = beta * (vov - vds) * clm + ids0 * p.lambda;
        MosChannel {
            ids,
            gm,
            gds,
            gmbs: gm * (-dvt_dvbs),
        }
    }
}

/// Evaluates a voltage-controlled switch at control voltage `vc`.
///
/// Returns `(g, dg_dvc)`: the switch conductance and its derivative with
/// respect to the control voltage. The conductance interpolates
/// log-linearly between `1/r_off` and `1/r_on` through a smoothstep of the
/// control window, so it is C¹ everywhere.
pub fn switch_eval(vc: f64, p: &SwitchParams) -> (f64, f64) {
    let g_on = 1.0 / p.r_on;
    let g_off = 1.0 / p.r_off;
    let span = p.v_on - p.v_off;
    let t = ((vc - p.v_off) / span).clamp(0.0, 1.0);
    // Smoothstep s(t) = 3t² − 2t³, s'(t) = 6t(1−t).
    let s = t * t * (3.0 - 2.0 * t);
    let ds_dt = 6.0 * t * (1.0 - t);
    let lg_on = g_on.ln();
    let lg_off = g_off.ln();
    let lg = lg_off + (lg_on - lg_off) * s;
    let g = lg.exp();
    let dg = g * (lg_on - lg_off) * ds_dt / span;
    (g, dg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nparams() -> MosfetParams {
        MosfetParams::nmos_default()
    }

    #[test]
    fn diode_forward_is_exponential() {
        let p = DiodeParams::default();
        let (i1, g1) = diode_eval(0.6, &p);
        let (i2, _) = diode_eval(0.6 + VT_THERMAL, &p);
        assert!(i1 > 0.0 && g1 > 0.0);
        // One thermal voltage up multiplies the current by ~e.
        assert!((i2 / i1 - std::f64::consts::E).abs() < 0.01);
    }

    #[test]
    fn diode_reverse_saturates() {
        let p = DiodeParams::default();
        let (i, _) = diode_eval(-5.0, &p);
        assert!((i + p.is).abs() < 1e-16);
    }

    #[test]
    fn diode_never_overflows() {
        let p = DiodeParams::default();
        let (i, g) = diode_eval(100.0, &p);
        assert!(i.is_finite() && g.is_finite());
        // Linearised region is still monotone increasing.
        let (i2, _) = diode_eval(101.0, &p);
        assert!(i2 > i);
    }

    #[test]
    fn nmos_cutoff_saturation_triode() {
        let p = nparams();
        // Cutoff.
        let c = mosfet_eval(0.2, 2.0, 0.0, MosType::Nmos, &p);
        assert_eq!(c.ids, 0.0);
        // Saturation: vgs = 1.75 (vov = 1.0), vds = 3 > vov.
        let s = mosfet_eval(1.75, 3.0, 0.0, MosType::Nmos, &p);
        let beta = p.kp * p.w / p.l;
        let expect = 0.5 * beta * 1.0 * (1.0 + p.lambda * 3.0);
        assert!((s.ids - expect).abs() / expect < 1e-9);
        assert!(s.gm > 0.0 && s.gds > 0.0);
        // Triode: vds = 0.1 << vov.
        let t = mosfet_eval(1.75, 0.1, 0.0, MosType::Nmos, &p);
        assert!(t.ids < s.ids);
        assert!(t.gds > s.gds); // triode output conductance is large
    }

    #[test]
    fn nmos_reversal_is_antisymmetric() {
        let p = nparams();
        // With source and drain swapped the current must negate exactly:
        // ids(vg - vs, vd - vs, vb - vs) = -ids(vg - vd, vs - vd, vb - vd).
        let (vg, vd, vs, vb) = (2.0, 0.5, 1.0, 0.0);
        let fwd = mosfet_eval(vg - vs, vd - vs, vb - vs, MosType::Nmos, &p);
        let rev = mosfet_eval(vg - vd, vs - vd, vb - vd, MosType::Nmos, &p);
        assert!((fwd.ids + rev.ids).abs() < 1e-15);
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let p = MosfetParams::pmos_default();
        // PMOS on: vgs = −2, vds = −2 → negative drain current.
        let m = mosfet_eval(-2.0, -2.0, 0.0, MosType::Pmos, &p);
        assert!(m.ids < 0.0);
        assert!(m.gm > 0.0, "gm must stay positive, got {}", m.gm);
        // PMOS off.
        let off = mosfet_eval(0.0, -2.0, 0.0, MosType::Pmos, &p);
        assert_eq!(off.ids, 0.0);
    }

    #[test]
    fn body_effect_raises_threshold() {
        let p = nparams();
        let no_body = mosfet_eval(1.0, 2.0, 0.0, MosType::Nmos, &p);
        let body = mosfet_eval(1.0, 2.0, -2.0, MosType::Nmos, &p);
        assert!(body.ids < no_body.ids);
    }

    #[test]
    fn channel_current_continuous_at_saturation_edge() {
        let p = nparams();
        let vov = 1.0;
        let below = mosfet_eval(p.vt0 + vov, vov - 1e-9, 0.0, MosType::Nmos, &p);
        let above = mosfet_eval(p.vt0 + vov, vov + 1e-9, 0.0, MosType::Nmos, &p);
        assert!((below.ids - above.ids).abs() < 1e-9 * below.ids.max(1e-12));
    }

    #[test]
    fn switch_interpolates_conductance() {
        let p = SwitchParams::default();
        let (g_off, _) = switch_eval(p.v_off - 1.0, &p);
        let (g_on, _) = switch_eval(p.v_on + 1.0, &p);
        assert!((g_off - 1.0 / p.r_off).abs() / g_off < 1e-12);
        assert!((g_on - 1.0 / p.r_on).abs() / g_on < 1e-12);
        let (g_mid, dg_mid) = switch_eval((p.v_on + p.v_off) / 2.0, &p);
        assert!(g_mid > g_off && g_mid < g_on);
        assert!(dg_mid > 0.0);
    }

    #[test]
    fn switch_derivative_vanishes_outside_window() {
        let p = SwitchParams::default();
        let (_, d1) = switch_eval(p.v_off - 0.5, &p);
        let (_, d2) = switch_eval(p.v_on + 0.5, &p);
        assert_eq!(d1, 0.0);
        assert_eq!(d2, 0.0);
    }
}
