//! Dense real matrix with LU factorisation.
//!
//! The macro cells simulated in this workspace have at most a few hundred
//! unknowns, where a cache-friendly dense LU with partial pivoting beats a
//! sparse solver both in code complexity and in wall-clock time. (The
//! `dense_lu` criterion bench quantifies this.)
//!
//! Factorisation and solution are split: [`LuFactors`] holds the packed
//! `L`/`U` triangles plus the pivot permutation, so one factorisation can
//! back a run of solves — the foundation of the engine's factor-reuse
//! layer, and the routine *every* production solve uses whether the
//! caches are on or off (which is what keeps the caches bit-invisible).
//! [`DenseMatrix::solve_in_place`] remains as the fused one-shot path for
//! small systems and as an independent reference in tests; the split
//! solve reassociates its triangular-sweep dot products four ways for
//! pipeline throughput, so the two paths agree to round-off (asserted by
//! the `factor_solve_matches_fused*` property tests), not bit-for-bit.

/// Why a factorisation was refused: the best pivot available in `col` had
/// magnitude `pivot_mag`, vanishingly small relative to the largest
/// magnitude in that factored column.
///
/// Carried by every solve/factor failure so callers — the rank-update
/// fallback, the escalation ladder — can report *why* a matrix was deemed
/// singular instead of collapsing the cause into a bare `bool`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingularInfo {
    /// Elimination column at which no acceptable pivot existed.
    pub col: usize,
    /// Magnitude of the best pivot found in that column (0.0 for an
    /// all-zero column; NaN pivots report as NaN).
    pub pivot_mag: f64,
}

/// A dense, row-major `n × n` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Resets all entries to zero without reallocating.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Reads entry `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n + col]
    }

    /// Writes entry `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] = value;
    }

    /// Adds `value` to entry `(row, col)` — the fundamental MNA stamp.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] += value;
    }

    /// The raw row-major entries (read-only). Used by the factor-reuse
    /// layer to compare assembled matrices byte-for-byte and by the
    /// rank-update delta scan.
    #[inline]
    pub fn entries(&self) -> &[f64] {
        &self.data
    }

    /// Overwrites all entries from `src` (row-major, length `n·n`).
    #[inline]
    pub fn load_entries(&mut self, src: &[f64]) {
        debug_assert_eq!(src.len(), self.data.len());
        self.data.copy_from_slice(src);
    }

    /// The raw row-major entries, mutable. Used by the batched-assembly
    /// layer for flat-indexed baseline installs and dynamic-cell resets.
    #[inline]
    pub(crate) fn entries_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Computes `self · x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        self.data
            .chunks_exact(self.n)
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Factors the matrix in place (LU with partial pivoting) and solves
    /// `A·x = b`, overwriting `b` with `x`.
    ///
    /// Returns `Err(SingularInfo)` if the matrix is numerically singular:
    /// the best pivot available in a column is vanishingly small *relative
    /// to the largest magnitude in that factored column* (ratio below
    /// `1e-14`), so uniformly rescaling the system never changes the
    /// verdict — a well-conditioned matrix that happens to live near
    /// `1e-300` still solves, while exact cancellation is still caught at
    /// any scale. The contents of `self` and `b` are unspecified in that
    /// case.
    ///
    /// # Errors
    /// [`SingularInfo`] naming the offending column and its best pivot.
    ///
    /// # Panics
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> Result<(), SingularInfo> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let a = &mut self.data;
        for k in 0..n {
            // Partial pivot: find the largest |a[i][k]| for i >= k.
            let mut piv = k;
            let mut max = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > max {
                    max = v;
                    piv = i;
                }
            }
            // Scale-relative singularity test: compare the pivot against
            // the largest magnitude anywhere in the factored column,
            // including the already-eliminated U part above the diagonal.
            // An all-zero column (col_max == 0) and a NaN pivot both land
            // in the singular branch.
            let mut col_max = max;
            for i in 0..k {
                col_max = col_max.max(a[i * n + k].abs());
            }
            if max.is_nan() || max <= col_max * 1e-14 {
                return Err(SingularInfo {
                    col: k,
                    pivot_mag: max,
                });
            }
            if piv != k {
                for j in 0..n {
                    a.swap(k * n + j, piv * n + j);
                }
                b.swap(k, piv);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let factor = a[i * n + k] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[i * n + k] = 0.0;
                for j in (k + 1)..n {
                    a[i * n + j] -= factor * a[k * n + j];
                }
                b[i] -= factor * b[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut acc = b[k];
            for j in (k + 1)..n {
                acc -= a[k * n + j] * b[j];
            }
            b[k] = acc / a[k * n + k];
        }
        Ok(())
    }
}

/// A completed LU factorisation with partial pivoting: `U` on and above
/// the diagonal, the elimination multipliers of `L` (unit diagonal
/// implied) below it, and the row-interchange sequence.
///
/// Factor once with [`LuFactors::refactor`], then run any number of
/// [`LuFactors::solve`] calls. The factorisation arithmetic (pivot
/// choices, multipliers, singularity test) is identical — operation for
/// operation — to [`DenseMatrix::solve_in_place`]. The solve replay is
/// the single routine behind every production solve, cached or not,
/// which is what lets the engine's factor cache be invisible in every
/// deterministic artifact: a cache hit replays the same factors through
/// the same arithmetic.
///
/// Buffers are retained across `refactor` calls, so a long-lived
/// `LuFactors` allocates only when the dimension grows.
#[derive(Debug, Clone, Default)]
pub struct LuFactors {
    n: usize,
    /// Packed factors, row-major: `U` on/above the diagonal, `L`
    /// multipliers strictly below.
    lu: Vec<f64>,
    /// `piv[k]` is the row swapped with `k` at elimination step `k`
    /// (`piv[k] == k` when no interchange happened).
    piv: Vec<usize>,
}

impl LuFactors {
    /// An empty factorisation (dimension 0); fill via
    /// [`LuFactors::refactor`].
    pub fn new() -> Self {
        LuFactors::default()
    }

    /// Assembles a factorisation from raw parts. Used by the lockstep
    /// SoA kernel (`crate::soa`), which factors many same-dimension
    /// matrices in a blocked `[cell][lane]` layout and unpacks each
    /// lane into a standalone `LuFactors` whose `solve` replays are
    /// indistinguishable from a scalar `refactor` of the same matrix.
    pub(crate) fn from_parts(n: usize, lu: Vec<f64>, piv: Vec<usize>) -> Self {
        debug_assert_eq!(lu.len(), n * n);
        debug_assert_eq!(piv.len(), n);
        LuFactors { n, lu, piv }
    }

    /// Raw `(dim, packed factors, pivots)` view for in-crate bitwise
    /// equivalence tests.
    #[cfg(test)]
    pub(crate) fn parts(&self) -> (usize, &[f64], &[usize]) {
        (self.n, &self.lu, &self.piv)
    }

    /// Factored dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Factors `a` into `self`, reusing the existing buffers. `a` itself
    /// is untouched (the engine keeps the assembled matrix for delta
    /// scans and residual checks).
    ///
    /// The singularity test is the same scale-relative pivot test as
    /// [`DenseMatrix::solve_in_place`]; on failure the factor contents
    /// are unspecified and the previous factorisation is lost.
    ///
    /// # Errors
    /// [`SingularInfo`] naming the offending column and its best pivot.
    pub fn refactor(&mut self, a: &DenseMatrix) -> Result<(), SingularInfo> {
        let n = a.n;
        self.n = n;
        self.lu.clear();
        self.lu.extend_from_slice(&a.data);
        self.piv.clear();
        self.piv.resize(n, 0);
        let lu = &mut self.lu;
        for k in 0..n {
            let mut piv = k;
            let mut max = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > max {
                    max = v;
                    piv = i;
                }
            }
            let mut col_max = max;
            for i in 0..k {
                col_max = col_max.max(lu[i * n + k].abs());
            }
            if max.is_nan() || max <= col_max * 1e-14 {
                return Err(SingularInfo {
                    col: k,
                    pivot_mag: max,
                });
            }
            self.piv[k] = piv;
            if piv != k {
                for j in 0..n {
                    lu.swap(k * n + j, piv * n + j);
                }
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                // `factor == 0.0` rows are skipped exactly as in the fused
                // path (an underflowed multiplier must not turn a later
                // `inf · 0` into NaN); the zero multiplier stored here
                // makes `solve` skip the same rows.
                lu[i * n + k] = factor;
                if factor == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    lu[i * n + j] -= factor * lu[k * n + j];
                }
            }
        }
        Ok(())
    }

    /// Solves `A·x = b` using the stored factors, overwriting `b` with
    /// `x`.
    ///
    /// Every production solve — with the factor caches on *or* off —
    /// goes through this routine, so its arithmetic only has to be
    /// deterministic, not bit-matched to the fused
    /// [`DenseMatrix::solve_in_place`] (which survives for one-shot
    /// small systems and as an independent reference in tests). That
    /// freedom is spent on speed: both triangular sweeps run their dot
    /// products with a fixed four-way association, which breaks the
    /// fused-multiply-add latency chain a sequential accumulation is
    /// pinned to and roughly triples solve throughput at circuit sizes.
    ///
    /// # Panics
    /// Panics if `b.len() != self.dim()` or nothing has been factored.
    pub fn solve(&self, b: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n);
        let lu = &self.lu;
        // The stored multipliers are the *final* packed `L`: every row
        // interchange of the factorisation — including ones later than
        // the multiplier's own elimination step — has been applied to
        // them. So `b` must be fully permuted *first*, then eliminated;
        // interleaving the swaps with the elimination would pair
        // multipliers with pre-swap `b` entries.
        for k in 0..n {
            let piv = self.piv[k];
            if piv != k {
                b.swap(k, piv);
            }
        }
        // Forward elimination, traversed row by row so the packed `L` is
        // read in storage order (the column-by-column formulation strides
        // by `n` and thrashes the cache): b[i] -= L[i,·]·b[..i].
        for i in 1..n {
            let row = &lu[i * n..i * n + i];
            b[i] -= dot4(row, &b[..i]);
        }
        // Back substitution: b[k] = (b[k] − U[k,k+1..]·b[k+1..]) / U[k,k].
        for k in (0..n).rev() {
            let row = &lu[k * n..(k + 1) * n];
            let acc = b[k] - dot4(&row[k + 1..], &b[k + 1..]);
            b[k] = acc / row[k];
        }
    }

    /// Solves `A·X = B` for `k` right-hand sides stored column-major and
    /// contiguous in `b` (`b.len() == k·dim`), overwriting them with the
    /// solutions. Per column this performs exactly the arithmetic of
    /// [`LuFactors::solve`] — the batching only shares each pass over
    /// the packed factors across all columns, which matters because one
    /// sweep streams the whole factor array through the cache whether it
    /// serves one right-hand side or eight.
    ///
    /// # Panics
    /// Panics if `b.len()` is not a multiple of `self.dim()`.
    pub fn solve_block(&self, b: &mut [f64]) {
        let n = self.n;
        if n == 0 {
            assert!(b.is_empty());
            return;
        }
        assert_eq!(b.len() % n, 0);
        let k = b.len() / n;
        if k == 1 {
            return self.solve(b);
        }
        let lu = &self.lu;
        for j in 0..k {
            let col = &mut b[j * n..(j + 1) * n];
            for i in 0..n {
                let piv = self.piv[i];
                if piv != i {
                    col.swap(i, piv);
                }
            }
        }
        for i in 1..n {
            let row = &lu[i * n..i * n + i];
            for j in 0..k {
                let col = &mut b[j * n..(j + 1) * n];
                col[i] -= dot4(row, &col[..i]);
            }
        }
        for i in (0..n).rev() {
            let row = &lu[i * n..(i + 1) * n];
            for j in 0..k {
                let col = &mut b[j * n..(j + 1) * n];
                let acc = col[i] - dot4(&row[i + 1..], &col[i + 1..]);
                col[i] = acc / row[i];
            }
        }
    }
}

/// Dot product with a fixed four-way association:
/// `(Σ₀ + Σ₁) + (Σ₂ + Σ₃)` over the interleaved quarters, then the
/// remainder folded in sequentially. Deterministic for a given input,
/// and four independent accumulators keep the multiply-add pipeline full
/// instead of serialising on one. Quads of `a` that are entirely zero
/// are skipped — factored circuit matrices stay sparse even after
/// fill-in, so most quads of a packed `L`/`U` row contribute nothing.
#[inline]
fn dot4(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; 4];
    for (qa, qb) in a.chunks_exact(4).zip(b.chunks_exact(4)) {
        if qa[0] == 0.0 && qa[1] == 0.0 && qa[2] == 0.0 && qa[3] == 0.0 {
            continue;
        }
        acc[0] += qa[0] * qb[0];
        acc[1] += qa[1] * qb[1];
        acc[2] += qa[2] * qb[2];
        acc[3] += qa[3] * qb[3];
    }
    let mut dot = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    let n4 = a.len() & !3;
    for (&xa, &xb) in a[n4..].iter().zip(&b[n4..]) {
        dot += xa * xb;
    }
    dot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = DenseMatrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let mut b = vec![1.0, 2.0, 3.0];
        assert!(m.solve_in_place(&mut b).is_ok());
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_general_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 3.0);
        let mut b = vec![3.0, 5.0];
        assert!(m.solve_in_place(&mut b).is_ok());
        assert!((b[0] - 0.8).abs() < 1e-12);
        assert!((b[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3] -> x = [3, 2]
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        let mut b = vec![2.0, 3.0];
        assert!(m.solve_in_place(&mut b).is_ok());
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular_with_location() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        let mut b = vec![1.0, 2.0];
        let info = m.solve_in_place(&mut b).expect_err("rank-1 is singular");
        // Column 0 eliminates fine; the cancellation shows at column 1.
        assert_eq!(info.col, 1);
        assert!(info.pivot_mag.abs() < 4.0 * 1e-14 * 1.001);
    }

    #[test]
    fn solves_badly_scaled_but_well_conditioned() {
        // The same well-conditioned system as `solves_general_system`,
        // scaled down to ~1e-302. The old absolute pivot floor (1e-300)
        // called this singular even though the solution is unchanged by
        // uniform scaling.
        let s = 1e-302;
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 2.0 * s);
        m.set(0, 1, 1.0 * s);
        m.set(1, 0, 1.0 * s);
        m.set(1, 1, 3.0 * s);
        let mut b = vec![3.0 * s, 5.0 * s];
        assert!(m.solve_in_place(&mut b).is_ok(), "scaled system must solve");
        assert!((b[0] - 0.8).abs() < 1e-12);
        assert!((b[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn scaled_singular_still_detected() {
        // Exact cancellation is singular at any scale — the relative test
        // may not weaken detection for small matrices.
        for s in [1e-250, 1.0, 1e250] {
            let mut m = DenseMatrix::zeros(2);
            m.set(0, 0, 1.0 * s);
            m.set(0, 1, 2.0 * s);
            m.set(1, 0, 2.0 * s);
            m.set(1, 1, 4.0 * s);
            let mut b = vec![s, 2.0 * s];
            assert!(
                m.solve_in_place(&mut b).is_err(),
                "scale {s:e} must stay singular"
            );
        }
    }

    #[test]
    fn wide_dynamic_range_diagonal_solves() {
        // Rows at wildly different scales are fine as long as each column
        // has a healthy pivot relative to its own magnitude.
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1e300);
        m.set(1, 1, 1e-300);
        let mut b = vec![2e300, 3e-300];
        assert!(m.solve_in_place(&mut b).is_ok());
        assert!((b[0] - 2.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix_is_singular() {
        let mut m = DenseMatrix::zeros(3);
        let mut b = vec![1.0, 1.0, 1.0];
        let info = m.solve_in_place(&mut b).expect_err("zero is singular");
        assert_eq!(info.col, 0);
        assert_eq!(info.pivot_mag, 0.0);
    }

    #[test]
    fn mul_vec_matches_solution() {
        let mut m = DenseMatrix::zeros(3);
        let entries = [
            (0, 0, 4.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 4.0),
            (1, 2, -1.0),
            (2, 1, -1.0),
            (2, 2, 4.0),
        ];
        for (r, c, v) in entries {
            m.set(r, c, v);
        }
        let a = m.clone();
        let mut b = vec![1.0, 2.0, 3.0];
        let b0 = b.clone();
        assert!(m.solve_in_place(&mut b).is_ok());
        let back = a.mul_vec(&b);
        for (x, y) in back.iter().zip(&b0) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    /// Deterministic pseudo-random diagonally dominant system.
    fn random_system(n: usize, seed0: u64) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(n);
        let mut seed = seed0;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        for r in 0..n {
            let mut rowsum = 0.0;
            for c in 0..n {
                if r != c {
                    let v = next();
                    m.set(r, c, v);
                    rowsum += v.abs();
                }
            }
            m.set(r, r, rowsum + 1.0);
        }
        m
    }

    #[test]
    fn larger_random_like_system_roundtrips() {
        let n = 40;
        let m = random_system(n, 0x9e3779b97f4a7c15u64);
        let a = m.clone();
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 3.0).collect();
        let mut b = a.mul_vec(&xtrue);
        let mut fused = m.clone();
        assert!(fused.solve_in_place(&mut b).is_ok());
        for (x, y) in b.iter().zip(&xtrue) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    /// Asserts the split solve agrees with the fused reference to
    /// round-off. The two paths intentionally associate their dot
    /// products differently (the split path runs four accumulators for
    /// pipeline throughput), so agreement is to a tight relative
    /// tolerance, not bit-for-bit; a permutation-handling bug produces
    /// errors many orders of magnitude beyond this bound.
    fn assert_close(reference: &[f64], split: &[f64], ctx: &str) {
        for (a, b) in reference.iter().zip(split) {
            let tol = 1e-11 * a.abs().max(1.0);
            assert!((a - b).abs() <= tol, "{ctx}: {a} vs {b}");
        }
    }

    #[test]
    fn factor_solve_matches_fused() {
        for (i, seed) in [0x9e3779b97f4a7c15u64, 1995, 0xD07, 42, u64::MAX / 7]
            .into_iter()
            .enumerate()
        {
            let n = 3 + i * 17;
            let m = random_system(n, seed);
            let rhs: Vec<f64> = (0..n).map(|k| ((k * 7 % 13) as f64) - 6.0).collect();

            let mut fused = m.clone();
            let mut b_fused = rhs.clone();
            fused
                .solve_in_place(&mut b_fused)
                .expect("well-conditioned");

            let mut lu = LuFactors::new();
            lu.refactor(&m).expect("well-conditioned");
            let mut b_split = rhs.clone();
            lu.solve(&mut b_split);

            assert_close(&b_fused, &b_split, &format!("seed {seed} n {n}"));
        }
    }

    #[test]
    fn factor_solve_matches_fused_under_heavy_pivoting() {
        // Cyclically rotating the rows of a diagonally dominant system
        // moves every dominant entry off the diagonal, so elimination
        // must interchange rows at (nearly) every step — the regime the
        // interleaved-swap replay bug lived in. MNA matrices sit here:
        // voltage-source branch rows have structurally zero diagonals.
        for (i, seed) in [3u64, 0x5eed, 77, 0x9e3779b97f4a7c15]
            .into_iter()
            .enumerate()
        {
            let n = 4 + i * 13;
            let base = random_system(n, seed);
            let mut m = DenseMatrix::zeros(n);
            for r in 0..n {
                for c in 0..n {
                    m.set((r + 1) % n, c, base.get(r, c));
                }
            }
            let rhs: Vec<f64> = (0..n).map(|k| ((k * 11 % 17) as f64) - 8.0).collect();

            let mut fused = m.clone();
            let mut b_fused = rhs.clone();
            fused
                .solve_in_place(&mut b_fused)
                .expect("well-conditioned");

            let mut lu = LuFactors::new();
            lu.refactor(&m).expect("well-conditioned");
            let mut b_split = rhs.clone();
            lu.solve(&mut b_split);

            assert_close(&b_fused, &b_split, &format!("seed {seed} n {n}"));
        }
    }

    #[test]
    fn repeated_solves_are_bit_deterministic() {
        // What the factor caches actually rely on: replaying the same
        // factors against the same right-hand side is bit-deterministic.
        let n = 29;
        let m = random_system(n, 0xCAFE);
        let mut lu = LuFactors::new();
        lu.refactor(&m).expect("factors");
        let rhs: Vec<f64> = (0..n).map(|k| ((k * 5 % 11) as f64) - 5.0).collect();
        let mut first = rhs.clone();
        lu.solve(&mut first);
        for _ in 0..3 {
            let mut again = rhs.clone();
            lu.solve(&mut again);
            for (a, b) in first.iter().zip(&again) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn refactor_reuses_buffers_and_repeats_solves() {
        let n = 12;
        let m1 = random_system(n, 7);
        let m2 = random_system(n, 8);
        let mut lu = LuFactors::new();
        lu.refactor(&m1).expect("m1 factors");
        // Many solves off one factorisation agree with fresh fused solves.
        for s in 0..4 {
            let rhs: Vec<f64> = (0..n).map(|k| (k as f64) * 0.5 - s as f64).collect();
            let mut b = rhs.clone();
            lu.solve(&mut b);
            let mut fresh = m1.clone();
            let mut bf = rhs.clone();
            fresh.solve_in_place(&mut bf).expect("m1 solves");
            assert_close(&bf, &b, "m1");
        }
        // Refactoring with a different matrix switches cleanly.
        lu.refactor(&m2).expect("m2 factors");
        let rhs: Vec<f64> = (0..n).map(|k| 1.0 - (k as f64)).collect();
        let mut b = rhs.clone();
        lu.solve(&mut b);
        let mut fresh = m2.clone();
        let mut bf = rhs.clone();
        fresh.solve_in_place(&mut bf).expect("m2 solves");
        assert_close(&bf, &b, "m2");
    }

    #[test]
    fn refactor_reports_singular_column() {
        let mut m = DenseMatrix::zeros(3);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        m.set(2, 2, 1.0);
        let mut lu = LuFactors::new();
        let info = lu.refactor(&m).expect_err("rank-deficient");
        assert_eq!(info.col, 1);
    }
}
