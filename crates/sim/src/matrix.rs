//! Dense real matrix with LU factorisation.
//!
//! The macro cells simulated in this workspace have at most a few hundred
//! unknowns, where a cache-friendly dense LU with partial pivoting beats a
//! sparse solver both in code complexity and in wall-clock time. (The
//! `dense_lu` criterion bench quantifies this.)

/// A dense, row-major `n × n` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Resets all entries to zero without reallocating.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Reads entry `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n + col]
    }

    /// Writes entry `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] = value;
    }

    /// Adds `value` to entry `(row, col)` — the fundamental MNA stamp.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n + col] += value;
    }

    /// Computes `self · x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        self.data
            .chunks_exact(self.n)
            .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Factors the matrix in place (LU with partial pivoting) and solves
    /// `A·x = b`, overwriting `b` with `x`.
    ///
    /// Returns `false` if the matrix is numerically singular: the best
    /// pivot available in a column is vanishingly small *relative to the
    /// largest magnitude in that factored column* (ratio below `1e-14`),
    /// so uniformly rescaling the system never changes the verdict — a
    /// well-conditioned matrix that happens to live near `1e-300` still
    /// solves, while exact cancellation is still caught at any scale. The
    /// contents of `self` and `b` are unspecified in that case.
    ///
    /// # Panics
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> bool {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let a = &mut self.data;
        for k in 0..n {
            // Partial pivot: find the largest |a[i][k]| for i >= k.
            let mut piv = k;
            let mut max = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > max {
                    max = v;
                    piv = i;
                }
            }
            // Scale-relative singularity test: compare the pivot against
            // the largest magnitude anywhere in the factored column,
            // including the already-eliminated U part above the diagonal.
            // An all-zero column (col_max == 0) and a NaN pivot both land
            // in the singular branch.
            let mut col_max = max;
            for i in 0..k {
                col_max = col_max.max(a[i * n + k].abs());
            }
            if max.is_nan() || max <= col_max * 1e-14 {
                return false;
            }
            if piv != k {
                for j in 0..n {
                    a.swap(k * n + j, piv * n + j);
                }
                b.swap(k, piv);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let factor = a[i * n + k] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[i * n + k] = 0.0;
                for j in (k + 1)..n {
                    a[i * n + j] -= factor * a[k * n + j];
                }
                b[i] -= factor * b[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut acc = b[k];
            for j in (k + 1)..n {
                acc -= a[k * n + j] * b[j];
            }
            b[k] = acc / a[k * n + k];
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut m = DenseMatrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let mut b = vec![1.0, 2.0, 3.0];
        assert!(m.solve_in_place(&mut b));
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_general_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 3.0);
        let mut b = vec![3.0, 5.0];
        assert!(m.solve_in_place(&mut b));
        assert!((b[0] - 0.8).abs() < 1e-12);
        assert!((b[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3] -> x = [3, 2]
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        let mut b = vec![2.0, 3.0];
        assert!(m.solve_in_place(&mut b));
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        let mut b = vec![1.0, 2.0];
        assert!(!m.solve_in_place(&mut b));
    }

    #[test]
    fn solves_badly_scaled_but_well_conditioned() {
        // The same well-conditioned system as `solves_general_system`,
        // scaled down to ~1e-302. The old absolute pivot floor (1e-300)
        // called this singular even though the solution is unchanged by
        // uniform scaling.
        let s = 1e-302;
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 2.0 * s);
        m.set(0, 1, 1.0 * s);
        m.set(1, 0, 1.0 * s);
        m.set(1, 1, 3.0 * s);
        let mut b = vec![3.0 * s, 5.0 * s];
        assert!(m.solve_in_place(&mut b), "scaled system must solve");
        assert!((b[0] - 0.8).abs() < 1e-12);
        assert!((b[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn scaled_singular_still_detected() {
        // Exact cancellation is singular at any scale — the relative test
        // may not weaken detection for small matrices.
        for s in [1e-250, 1.0, 1e250] {
            let mut m = DenseMatrix::zeros(2);
            m.set(0, 0, 1.0 * s);
            m.set(0, 1, 2.0 * s);
            m.set(1, 0, 2.0 * s);
            m.set(1, 1, 4.0 * s);
            let mut b = vec![s, 2.0 * s];
            assert!(!m.solve_in_place(&mut b), "scale {s:e} must stay singular");
        }
    }

    #[test]
    fn wide_dynamic_range_diagonal_solves() {
        // Rows at wildly different scales are fine as long as each column
        // has a healthy pivot relative to its own magnitude.
        let mut m = DenseMatrix::zeros(2);
        m.set(0, 0, 1e300);
        m.set(1, 1, 1e-300);
        let mut b = vec![2e300, 3e-300];
        assert!(m.solve_in_place(&mut b));
        assert!((b[0] - 2.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix_is_singular() {
        let mut m = DenseMatrix::zeros(3);
        let mut b = vec![1.0, 1.0, 1.0];
        assert!(!m.solve_in_place(&mut b));
    }

    #[test]
    fn mul_vec_matches_solution() {
        let mut m = DenseMatrix::zeros(3);
        let entries = [
            (0, 0, 4.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 4.0),
            (1, 2, -1.0),
            (2, 1, -1.0),
            (2, 2, 4.0),
        ];
        for (r, c, v) in entries {
            m.set(r, c, v);
        }
        let a = m.clone();
        let mut b = vec![1.0, 2.0, 3.0];
        let b0 = b.clone();
        assert!(m.solve_in_place(&mut b));
        let back = a.mul_vec(&b);
        for (x, y) in back.iter().zip(&b0) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn larger_random_like_system_roundtrips() {
        // Deterministic pseudo-random diagonally dominant system.
        let n = 40;
        let mut m = DenseMatrix::zeros(n);
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        for r in 0..n {
            let mut rowsum = 0.0;
            for c in 0..n {
                if r != c {
                    let v = next();
                    m.set(r, c, v);
                    rowsum += v.abs();
                }
            }
            m.set(r, r, rowsum + 1.0);
        }
        let a = m.clone();
        let xtrue: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 3.0).collect();
        let mut b = a.mul_vec(&xtrue);
        assert!(m.solve_in_place(&mut b));
        for (x, y) in b.iter().zip(&xtrue) {
            assert!((x - y).abs() < 1e-8);
        }
    }
}
