//! Split-plan batched assembly: hoists every x-independent stamp out of
//! the Newton loop.
//!
//! The compiled stamp plan ([`crate::engine::PlanOp`]) already folds
//! constant stamps into `MatAdd` ops, but the interpretive replay still
//! re-adds every one of them on every Newton iteration. This module
//! partitions the matrix *cells* into a static set (touched only by
//! constant stamps) and a dynamic set (touched by any re-linearised
//! device or by a capacitor companion), sums the static ops once into a
//! gmin-keyed **baseline** matrix, and reduces the per-iteration assembly
//! to `baseline copy + dynamic replay`.
//!
//! Bitwise identity with the scalar path holds by construction: the
//! per-cell addition sequence is unchanged. A static cell accumulates
//! `gmin → constant ops in plan order` exactly as before — just once, in
//! the baseline, instead of per iteration — and any cell a dynamic op
//! touches keeps *all* of its ops (constant ones included) in the replay
//! list, in original plan order. Floating-point addition is deterministic
//! per sequence, so the assembled matrix is bit-identical, which is why
//! `DOTM_BATCH_ASSEMBLY` can default on.
//!
//! [`SharedAssembly`] extends the split across a *class* of fault
//! variants: the nominal testbench's static sum is compiled once and
//! embedded into every device-prefix-equal variant, whose own stamp work
//! then reduces to a compact delta (the appended fault devices' ops).
//! Variants that rewire the base circuit (node splits, new parasitic
//! devices) fail the prefix check and fall back to a locally computed
//! split — still batched, just not shared.

use crate::engine::PlanOp;
use crate::matrix::DenseMatrix;
use dotm_netlist::{DeviceKind, Netlist, NodeId};
use std::sync::{Arc, Mutex};

/// Dense bitset over matrix cells (`r * n + c`).
#[derive(Debug, Clone)]
pub(crate) struct CellSet {
    n: usize,
    bits: Vec<u64>,
}

impl CellSet {
    fn new(n: usize) -> Self {
        CellSet {
            n,
            bits: vec![0; (n * n).div_ceil(64)],
        }
    }

    fn insert(&mut self, r: usize, c: usize) {
        let i = r * self.n + c;
        self.bits[i >> 6] |= 1 << (i & 63);
    }

    pub(crate) fn contains(&self, r: usize, c: usize) -> bool {
        let i = r * self.n + c;
        self.bits[i >> 6] & (1 << (i & 63)) != 0
    }

    /// Flattened indices of every set cell, ascending. The set is sparse
    /// (a handful of cells per re-linearised device), so iterating words
    /// and popping bits beats scanning all `n²` cells by ~64×.
    fn set_cells(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for (wi, &word) in self.bits.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                out.push((wi * 64 + w.trailing_zeros() as usize) as u32);
                w &= w - 1;
            }
        }
        out
    }
}

/// One hoisted constant stamp: `A[r][c] += v`, originally plan op `idx`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StaticOp {
    pub idx: u32,
    pub r: u32,
    pub c: u32,
    pub v: f64,
}

fn row(n: NodeId) -> Option<usize> {
    if n.is_ground() {
        None
    } else {
        Some(n.index() - 1)
    }
}

/// Marks the cells `stamp_g(p, q)` touches (symmetric in `p`/`q`).
fn mark_g(set: &mut CellSet, p: NodeId, q: NodeId) {
    if let Some(rp) = row(p) {
        set.insert(rp, rp);
        if let Some(rq) = row(q) {
            set.insert(rp, rq);
            set.insert(rq, rp);
            set.insert(rq, rq);
        }
    } else if let Some(rq) = row(q) {
        set.insert(rq, rq);
    }
}

/// Marks the cells `stamp_vccs(out_p, out_q, ctl_p, ctl_q)` touches.
fn mark_vccs(set: &mut CellSet, out_p: NodeId, out_q: NodeId, ctl_p: NodeId, ctl_q: NodeId) {
    for out in [out_p, out_q] {
        if let Some(ro) = row(out) {
            for ctl in [ctl_p, ctl_q] {
                if let Some(rc) = row(ctl) {
                    set.insert(ro, rc);
                }
            }
        }
    }
}

/// Enumerates every cell whose value can change between Newton
/// iterations or transient steps: the stamp patterns of re-linearised
/// devices plus the capacitor companion conductances (explicit caps and
/// MOSFET parasitics, mirroring `Simulator::collect_caps`). Capacitor
/// cells are marked unconditionally so one split serves both DC and
/// transient assembly. Dynamic cells only ever involve node rows, never
/// voltage-source branch rows.
pub(crate) fn dynamic_cells(nl: &Netlist, n_unknowns: usize) -> CellSet {
    let mut set = CellSet::new(n_unknowns);
    for (_, dev) in nl.devices() {
        match &dev.kind {
            DeviceKind::Capacitor { a, b, .. } => mark_g(&mut set, *a, *b),
            DeviceKind::Diode { anode, cathode, .. } => mark_g(&mut set, *anode, *cathode),
            DeviceKind::Mosfet { d, g, s, b, .. } => {
                // Channel transconductances.
                mark_vccs(&mut set, *d, *s, *g, *s);
                mark_vccs(&mut set, *d, *s, *d, *s);
                mark_vccs(&mut set, *d, *s, *b, *s);
                // Bulk junction diodes (the stamp_g pattern is symmetric,
                // so NMOS and PMOS orientations mark the same cells).
                mark_g(&mut set, *b, *d);
                mark_g(&mut set, *b, *s);
                // Parasitic companion capacitors.
                mark_g(&mut set, *g, *s);
                mark_g(&mut set, *g, *d);
                mark_g(&mut set, *d, *b);
                mark_g(&mut set, *s, *b);
            }
            DeviceKind::Switch { a, b, cp, cn, .. } => {
                mark_g(&mut set, *a, *b);
                mark_vccs(&mut set, *a, *b, *cp, *cn);
            }
            _ => {}
        }
    }
    set
}

/// Splits the plan: `MatAdd` ops on purely static cells become hoisted
/// [`StaticOp`]s; everything else (dynamic-cell constants, RHS ops,
/// re-linearised devices) stays in the per-iteration replay list.
pub(crate) fn classify(plan: &[PlanOp<'_>], dynamic: &CellSet) -> (Vec<StaticOp>, Vec<u32>) {
    let mut static_ops = Vec::new();
    let mut replay = Vec::new();
    for (i, op) in plan.iter().enumerate() {
        match op {
            PlanOp::MatAdd { r, c, v } if !dynamic.contains(*r, *c) => {
                static_ops.push(StaticOp {
                    idx: i as u32,
                    r: *r as u32,
                    c: *c as u32,
                    v: *v,
                });
            }
            _ => replay.push(i as u32),
        }
    }
    (static_ops, replay)
}

/// Sums gmin plus the hoisted static ops into a flat matrix, reproducing
/// the scalar path's per-cell addition order (gmin first, then constant
/// ops ascending by plan index).
fn build_baseline(
    n_nodes: usize,
    n_unknowns: usize,
    gmin: f64,
    static_ops: &[StaticOp],
) -> Vec<f64> {
    let n = n_unknowns;
    let mut m = vec![0.0; n * n];
    for r in 0..(n_nodes - 1) {
        m[r * n + r] += gmin;
    }
    for op in static_ops {
        m[op.r as usize * n + op.c as usize] += op.v;
    }
    m
}

/// The class-shared half of batched variant assembly: the nominal
/// testbench's compiled split (dynamic cell set, hoisted static sum,
/// replay list), plus a gmin-keyed cache of nominal baselines shared
/// across every variant simulator via `Arc`.
///
/// Compiled once per macro (or per good-space compilation) and handed to
/// each variant's [`crate::Simulator`] through
/// [`crate::Simulator::install_shared_assembly`].
pub struct SharedAssembly {
    base: Netlist,
    n_nodes: usize,
    n_unknowns: usize,
    n_ops: usize,
    dynamic: CellSet,
    static_ops: Vec<StaticOp>,
    baselines: Mutex<Vec<(u64, Arc<Vec<f64>>)>>,
}

impl std::fmt::Debug for SharedAssembly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedAssembly")
            .field("base", &self.base.name())
            .field("n_unknowns", &self.n_unknowns)
            .field("static_ops", &self.static_ops.len())
            .finish()
    }
}

impl SharedAssembly {
    /// Compiles the nominal split plan for `base`.
    pub fn compile(base: &Netlist) -> Self {
        let mut sim = crate::Simulator::new(base);
        let parts = sim.split_parts();
        SharedAssembly {
            base: base.clone(),
            n_nodes: parts.n_nodes,
            n_unknowns: parts.n_unknowns,
            n_ops: parts.n_ops,
            dynamic: parts.dynamic,
            static_ops: parts.static_ops,
            baselines: Mutex::new(Vec::new()),
        }
    }

    /// The nominal baseline at `gmin`, computed once per distinct gmin
    /// (the DC homotopy ladder and escalation rungs revisit the same few
    /// values) and shared across variant simulators. The value depends
    /// only on `gmin` bits, so cache-fill order cannot affect results.
    fn baseline(&self, gmin: f64) -> Arc<Vec<f64>> {
        let bits = gmin.to_bits();
        let mut cache = self.baselines.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, b)) = cache.iter().find(|(k, _)| *k == bits) {
            return Arc::clone(b);
        }
        let b = Arc::new(build_baseline(
            self.n_nodes,
            self.n_unknowns,
            gmin,
            &self.static_ops,
        ));
        cache.push((bits, Arc::clone(&b)));
        b
    }
}

/// Pieces of a compiled split plan extracted from a `Simulator`.
pub(crate) struct SplitParts {
    pub n_nodes: usize,
    pub n_unknowns: usize,
    pub n_ops: usize,
    pub dynamic: CellSet,
    pub static_ops: Vec<StaticOp>,
}

/// Where a variant's baseline values come from.
enum BaselineSource {
    /// Locally hoisted static sum (nominal runs, incompatible variants).
    Local { static_ops: Vec<StaticOp> },
    /// Embedded from the class-shared nominal baseline plus a per-variant
    /// stamp delta.
    Shared {
        shared: Arc<SharedAssembly>,
        /// Flattened variant-coordinate cells that are static in the base
        /// but dynamic in the variant (an appended fault device stamps
        /// them): their embedded static sums are reset to the gmin seed
        /// and their ops replay per iteration instead.
        demoted: Vec<u32>,
        /// Appended static ops (the variant's stamp delta), in plan order.
        delta: Vec<StaticOp>,
    },
}

/// Per-simulator batched-assembly state: the replay list, the baseline
/// source, and the dynamic cells split by diagonal/off-diagonal for the
/// per-iteration reset.
///
/// The baseline is never materialised per variant: it is written
/// straight into the simulator's system matrix once per distinct gmin
/// (the *install*), and between installs each assembly only resets the
/// dynamic cells to their baseline values. Those values need no lookup
/// table — static ops land exclusively on static cells (that is what
/// [`classify`] means), so a dynamic cell's baseline is always the gmin
/// seed on a node diagonal and exactly zero everywhere else.
pub(crate) struct BatchState {
    replay: Vec<u32>,
    source: BaselineSource,
    /// Dynamic cells on a node diagonal (baseline value: gmin).
    dyn_diag: Vec<u32>,
    /// Dynamic cells off the diagonal (baseline value: 0).
    dyn_offdiag: Vec<u32>,
    /// gmin bits of the baseline currently installed in the simulator's
    /// matrix; `None` before the first install. Valid because nothing
    /// outside `assemble` writes the matrix (the LU factorisation copies
    /// it) and the replay only ever touches dynamic cells.
    installed: Option<u64>,
}

impl BatchState {
    /// Plan indices replayed every iteration, ascending.
    pub(crate) fn replay(&self) -> &[u32] {
        &self.replay
    }

    /// Brings `a` to the baseline state for `gmin`: a full install the
    /// first time each gmin is seen (charged to the `batch_assembly`
    /// trace phase), an O(dynamic-cells) reset on every later iteration.
    pub(crate) fn install_into(
        &mut self,
        a: &mut DenseMatrix,
        n_nodes: usize,
        n_unknowns: usize,
        gmin: f64,
    ) {
        let bits = gmin.to_bits();
        if self.installed == Some(bits) {
            // The static cells still hold the installed baseline bits;
            // only the cells the replay touches have moved.
            let data = a.entries_mut();
            for &i in &self.dyn_offdiag {
                data[i as usize] = 0.0;
            }
            for &i in &self.dyn_diag {
                data[i as usize] = gmin;
            }
            return;
        }
        let t0 = dotm_obs::start();
        let n = n_unknowns;
        match &self.source {
            // Sum the static baseline straight into the matrix,
            // reproducing the scalar path's per-cell addition order (gmin
            // first, then constant ops ascending by plan index).
            BaselineSource::Local { static_ops } => {
                a.clear();
                for r in 0..(n_nodes - 1) {
                    a.add(r, r, gmin);
                }
                for op in static_ops {
                    a.add(op.r as usize, op.c as usize, op.v);
                }
            }
            BaselineSource::Shared {
                shared,
                demoted,
                delta,
            } => {
                let bb = shared.baseline(gmin);
                let bn = shared.n_unknowns;
                let split = shared.n_nodes - 1;
                // Appended nodes shift the base's branch rows up by `dn`.
                let dn = n_nodes - shared.n_nodes;
                if dn == 0 && n == bn {
                    a.load_entries(&bb);
                } else {
                    a.clear();
                    let data = a.entries_mut();
                    for br in 0..bn {
                        let vr = if br < split { br } else { br + dn };
                        for bc in 0..bn {
                            let vc = if bc < split { bc } else { bc + dn };
                            data[vr * n + vc] = bb[br * bn + bc];
                        }
                    }
                    for r in split..(n_nodes - 1) {
                        data[r * n + r] += gmin;
                    }
                }
                let data = a.entries_mut();
                for &cell in demoted {
                    let cell = cell as usize;
                    data[cell] = if cell / n == cell % n { gmin } else { 0.0 };
                }
                for op in delta {
                    data[op.r as usize * n + op.c as usize] += op.v;
                }
            }
        }
        self.installed = Some(bits);
        dotm_obs::phase(dotm_obs::Phase::BatchAssembly, t0);
    }
}

/// Builds the per-simulator batch state: classifies the plan against this
/// netlist's dynamic cells, then tries to adopt the class-shared nominal
/// baseline (device-prefix-equal, append-only variants), falling back to
/// a local static sum otherwise.
pub(crate) fn build_batch(
    nl: &Netlist,
    plan: &[PlanOp<'_>],
    n_nodes: usize,
    n_unknowns: usize,
    shared: Option<&Arc<SharedAssembly>>,
) -> BatchState {
    let dynamic = dynamic_cells(nl, n_unknowns);
    let (static_ops, replay) = classify(plan, &dynamic);
    let mut dyn_diag = Vec::new();
    let mut dyn_offdiag = Vec::new();
    for cell in dynamic.set_cells() {
        let i = cell as usize;
        if i / n_unknowns == i % n_unknowns {
            dyn_diag.push(cell);
        } else {
            dyn_offdiag.push(cell);
        }
    }
    let source = shared
        .and_then(|sh| {
            try_adopt(
                sh,
                nl,
                plan.len(),
                n_nodes,
                n_unknowns,
                &dynamic,
                &static_ops,
            )
        })
        .unwrap_or(BaselineSource::Local { static_ops });
    BatchState {
        replay,
        source,
        dyn_diag,
        dyn_offdiag,
        installed: None,
    }
}

/// Checks the append-only compatibility invariant and, when it holds,
/// derives the variant's shared baseline source. The variant must extend
/// the base netlist purely by appending: every base device equal (same
/// kind, parameters and terminals — `split_node` rewires and fails this),
/// at least as many nodes, and a plan that starts with the base's ops.
fn try_adopt(
    sh: &Arc<SharedAssembly>,
    nl: &Netlist,
    plan_len: usize,
    n_nodes: usize,
    n_unknowns: usize,
    dynamic: &CellSet,
    static_ops: &[StaticOp],
) -> Option<BaselineSource> {
    if n_nodes < sh.n_nodes
        || n_unknowns < sh.n_unknowns
        || plan_len < sh.n_ops
        || nl.device_count() < sh.base.device_count()
    {
        return None;
    }
    if !sh
        .base
        .devices()
        .zip(nl.devices())
        .all(|((_, base_dev), (_, var_dev))| base_dev == var_dev)
    {
        return None;
    }
    // Dynamic cells only involve node rows, which append-only variants
    // leave in place, so base and variant coordinates agree here. Demoted
    // cells are by definition dynamic in the variant, so scanning the
    // variant's sparse dynamic set beats a dense base-block sweep.
    let split = sh.n_nodes - 1;
    let mut demoted = Vec::new();
    for cell in dynamic.set_cells() {
        let (r, c) = (cell as usize / n_unknowns, cell as usize % n_unknowns);
        if r < split && c < split && !sh.dynamic.contains(r, c) {
            demoted.push(cell);
        }
    }
    let delta = static_ops
        .iter()
        .filter(|op| op.idx as usize >= sh.n_ops)
        .copied()
        .collect();
    Some(BaselineSource::Shared {
        shared: Arc::clone(sh),
        demoted,
        delta,
    })
}
