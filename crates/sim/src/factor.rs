//! Nominal-factor reuse: solve fault-variant systems as low-rank updates
//! of the factored nominal circuit (Sherman–Morrison–Woodbury).
//!
//! The defect-oriented flow evaluates thousands of circuits that are the
//! *nominal* netlist plus a tiny electrical delta — fault injection only
//! ever appends nodes and devices. [`NominalFactors`] captures the
//! nominal MNA matrix and its LU factorisation once per analysis slot;
//! [`NominalFactors::smw_solve`] then solves each variant system with a
//! handful of triangular solves instead of a fresh `O(n³)`
//! factorisation, as long as the variant differs from the (embedded)
//! nominal matrix in at most a few columns.
//!
//! Correctness is defended in depth rather than assumed: the delta scan
//! is exact (bitwise column comparison), the small capacitance matrix is
//! solved with the same scale-relative pivot test as every other solve
//! (ill-conditioned updates are refused), and every accepted solution
//! must pass a backward-error residual check against the *actual*
//! variant system. Any refusal falls back to a full refactorisation in
//! the engine — the update path is a speed-up, never a correctness
//! dependency.

use crate::matrix::{DenseMatrix, LuFactors};

/// Why a rank-update attempt did not produce a solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmwOutcome {
    /// The update solved the variant system; the solution passed the
    /// residual check.
    Solved,
    /// The variant differs from the embedded nominal matrix in more
    /// columns than the rank budget — a plain miss (typical for a
    /// nonlinear circuit re-linearised away from the nominal point).
    NotLowRank,
    /// The capacitance matrix `I + Vᵀ·A₀⁻¹·U` was numerically singular:
    /// the update is ill-conditioned and must be refused.
    IllConditioned,
    /// The candidate solution failed the backward-error residual check
    /// (or was non-finite) — verdict-affecting divergence is possible,
    /// so the engine must refactor in full.
    Inaccurate,
}

/// Maximum number of changed columns the update path accepts. Beyond
/// this the triangular-solve bill approaches the refactorisation it is
/// supposed to avoid, and typical fault deltas (one short, one open, one
/// appended device) touch only 2–6 columns.
pub const SMW_MAX_RANK: usize = 8;

/// Relative backward-error bound an accepted solution must satisfy:
/// `‖A_v·x − z‖∞ ≤ SMW_RESIDUAL_RTOL · (‖A_v‖∞·‖x‖∞ + ‖z‖∞)`.
pub const SMW_RESIDUAL_RTOL: f64 = 1e-9;

/// The nominal circuit's assembled MNA matrix and its LU factorisation,
/// captured once per (macro, analysis-slot) at the converged nominal
/// operating point and shared read-only across all fault variants and
/// escalation rungs with a matching `gmin`.
#[derive(Debug)]
pub struct NominalFactors {
    /// Nominal node count (including ground).
    n_nodes: usize,
    /// Nominal voltage-source count.
    n_vsrc: usize,
    /// The `gmin` the matrix was assembled with; a variant solve at a
    /// different `gmin` perturbs every node diagonal, so the engine only
    /// attempts the update when its `gmin` matches bit-for-bit.
    gmin: f64,
    /// The assembled nominal matrix (needed to compute update columns).
    a0: DenseMatrix,
    /// Its LU factorisation.
    lu: LuFactors,
}

impl NominalFactors {
    /// Captures `a0` (already assembled at the nominal operating point)
    /// and its factorisation. Returns `None` if the nominal matrix is
    /// singular — there is nothing worth reusing then.
    pub fn capture(a0: DenseMatrix, n_nodes: usize, n_vsrc: usize, gmin: f64) -> Option<Self> {
        let mut lu = LuFactors::new();
        lu.refactor(&a0).ok()?;
        Some(NominalFactors {
            n_nodes,
            n_vsrc,
            gmin,
            a0,
            lu,
        })
    }

    /// The `gmin` the nominal matrix was assembled with.
    #[inline]
    pub fn gmin(&self) -> f64 {
        self.gmin
    }

    /// Dimension of the nominal system.
    #[inline]
    pub fn dim(&self) -> usize {
        self.a0.dim()
    }

    /// Maps variant unknown `i` to the corresponding nominal unknown,
    /// or `None` for an appended (fault-added) node or branch.
    ///
    /// Fault injection appends: variant node voltages keep the nominal
    /// prefix, and the branch block starts at the *variant* node count,
    /// with nominal branches as its prefix. (The engine verifies the
    /// source id-prefix invariant in `seed_dc_from`; the same
    /// append-only structure is what makes this mapping total.)
    #[inline]
    fn map_to_nominal(&self, i: usize, v_n_nodes: usize) -> Option<usize> {
        let n0_v = self.n_nodes - 1;
        if i < v_n_nodes - 1 {
            if i < n0_v {
                Some(i)
            } else {
                None
            }
        } else {
            let k = i - (v_n_nodes - 1);
            if k < self.n_vsrc {
                Some(n0_v + k)
            } else {
                None
            }
        }
    }

    /// Applies `A₀ₑ⁻¹` in place, where `A₀ₑ` is the nominal matrix
    /// embedded into the variant's unknown ordering with an identity on
    /// the appended slots (so appended entries pass through unchanged).
    /// When the variant appends nothing the embedding is the identity
    /// and the gather/scatter through `n2v` is skipped entirely.
    fn solve_embedded(&self, v: &mut [f64], n2v: &[usize], b0: &mut [f64], identity: bool) {
        if identity {
            debug_assert_eq!(v.len(), n2v.len());
            self.lu.solve(v);
            return;
        }
        for (j, &vi) in n2v.iter().enumerate() {
            b0[j] = v[vi];
        }
        self.lu.solve(b0);
        for (j, &vi) in n2v.iter().enumerate() {
            v[vi] = b0[j];
        }
    }

    /// Attempts to solve `A_v·x = z` as a rank-k update of the embedded
    /// nominal matrix, writing the solution into `x` on success.
    ///
    /// Convenience single-shot form of [`NominalFactors::prepare`] +
    /// [`NominalFactors::solve_with`]; callers that solve the same
    /// variant matrix repeatedly (every measurement of a linear variant
    /// re-assembles it bit-identically) should cache the
    /// [`SmwPlan`] instead and skip the scan and update solves.
    pub fn smw_solve(
        &self,
        a_v: &DenseMatrix,
        z: &[f64],
        v_n_nodes: usize,
        x: &mut [f64],
    ) -> SmwOutcome {
        match self.prepare(a_v, v_n_nodes) {
            Ok(plan) => self.solve_with(&plan, a_v, z, x),
            Err(out) => out,
        }
    }

    /// Scans the variant matrix against the embedded nominal one and, if
    /// the delta is low-rank and well-conditioned, builds the reusable
    /// part of the Sherman–Morrison–Woodbury update: the changed-column
    /// set, the update solves `W = A₀ₑ⁻¹·U`, and the factored capacitance
    /// matrix. The plan depends only on the matrix *entries* (and the
    /// nominal factors it was built against), so a caller may reuse it
    /// for every right-hand side as long as the assembled matrix bytes
    /// are unchanged — replaying a plan is arithmetic-identical to
    /// rebuilding it.
    ///
    /// `v_n_nodes` is the variant circuit's node count (including
    /// ground), which fixes the embedding of nominal unknowns into the
    /// variant ordering. The delta scan and conditioning test are
    /// described on [`SmwOutcome`].
    pub fn prepare(&self, a_v: &DenseMatrix, v_n_nodes: usize) -> Result<SmwPlan, SmwOutcome> {
        let n_v = a_v.dim();
        let n0 = self.a0.dim();
        if n_v < n0 || v_n_nodes < self.n_nodes || (v_n_nodes - 1) + self.n_vsrc > n_v {
            // Not an append-only variant of this nominal circuit.
            return Err(SmwOutcome::NotLowRank);
        }

        // Variant-index → nominal-index map and its inverse. The map is
        // block-structured (the nominal node unknowns are a contiguous
        // prefix of the variant node block, the nominal branch unknowns
        // a contiguous prefix of the variant branch block), which the
        // delta scan below exploits to compare whole slices instead of
        // mapping every cell.
        let map: Vec<Option<usize>> = (0..n_v)
            .map(|i| self.map_to_nominal(i, v_n_nodes))
            .collect();
        let mut n2v = vec![0usize; n0];
        for (i, m) in map.iter().enumerate() {
            if let Some(j) = *m {
                n2v[j] = i;
            }
        }
        // With nothing appended the embedding is the identity.
        let identity = n_v == n0 && v_n_nodes == self.n_nodes;

        // Exact delta scan: find the columns where A_v differs from the
        // embedded nominal matrix, aborting as soon as the count exceeds
        // the rank budget. Unfaulted stamps are literal re-runs of the
        // nominal assembly (same devices, same order), so unchanged
        // cells compare equal exactly; NaN cells always register as
        // changed (`NaN != x` for every x) and are caught by the
        // residual check downstream.
        let n0_v = self.n_nodes - 1; // nominal node unknowns
        let v_nv = v_n_nodes - 1; // variant node unknowns
        let nb = self.n_vsrc; // nominal branch unknowns
        let a0e = self.a0.entries();
        let rows = a_v.entries();
        let mut changed_mask = vec![false; n_v];
        let mut n_changed = 0usize;
        // Mark column `c` as changed; abort once over the rank budget.
        macro_rules! mark {
            ($c:expr) => {
                let c = $c;
                if !changed_mask[c] {
                    changed_mask[c] = true;
                    n_changed += 1;
                    if n_changed > SMW_MAX_RANK {
                        return Err(SmwOutcome::NotLowRank);
                    }
                }
            };
        }
        // ‖A_v‖∞ for the residual bound rides along with the scan: the
        // row is L1-hot right after its comparison pass, so the extra
        // absolute-value sweep costs arithmetic only, not memory
        // traffic. Fixed 4-way association keeps it deterministic while
        // breaking the add latency chain.
        let mut a_inf: f64 = 0.0;
        for r in 0..n_v {
            let row = &rows[r * n_v..(r + 1) * n_v];
            match map[r] {
                Some(rn) => {
                    // Nominal row: per-block slice comparison against the
                    // corresponding nominal row; appended slots are zero
                    // in the embedding.
                    let a0row = &a0e[rn * n0..(rn + 1) * n0];
                    for (c, (&av, &a0v)) in row[..n0_v].iter().zip(&a0row[..n0_v]).enumerate() {
                        if av != a0v {
                            mark!(c);
                        }
                    }
                    for (i, &av) in row[n0_v..v_nv].iter().enumerate() {
                        if av != 0.0 {
                            mark!(n0_v + i);
                        }
                    }
                    for (i, (&av, &a0v)) in
                        row[v_nv..v_nv + nb].iter().zip(&a0row[n0_v..]).enumerate()
                    {
                        if av != a0v {
                            mark!(v_nv + i);
                        }
                    }
                    for (i, &av) in row[v_nv + nb..].iter().enumerate() {
                        if av != 0.0 {
                            mark!(v_nv + nb + i);
                        }
                    }
                }
                None => {
                    // Appended row: the embedding holds an identity row.
                    for (c, &av) in row.iter().enumerate() {
                        let a0v = if c == r { 1.0 } else { 0.0 };
                        if av != a0v {
                            mark!(c);
                        }
                    }
                }
            }
            let mut acc = [0.0f64; 4];
            for q in row.chunks_exact(4) {
                acc[0] += q[0].abs();
                acc[1] += q[1].abs();
                acc[2] += q[2].abs();
                acc[3] += q[3].abs();
            }
            let mut rowsum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
            for &v in row.chunks_exact(4).remainder() {
                rowsum += v.abs();
            }
            a_inf = a_inf.max(rowsum);
        }
        let changed: Vec<usize> = (0..n_v).filter(|&c| changed_mask[c]).collect();
        let k = changed.len();

        // W = A₀ₑ⁻¹·U; U's columns are the changed columns of
        // (A_v − A₀ₑ). All columns are materialised first, then solved
        // in one blocked sweep so the factor array streams through the
        // cache once instead of once per column.
        let mut w = vec![0.0; n_v * k];
        for (j, &c) in changed.iter().enumerate() {
            let col = &mut w[j * n_v..(j + 1) * n_v];
            match map[c] {
                Some(cn) => {
                    for (r, slot) in col.iter_mut().enumerate() {
                        let a0v = match map[r] {
                            Some(rn) => a0e[rn * n0 + cn],
                            None => 0.0,
                        };
                        *slot = rows[r * n_v + c] - a0v;
                    }
                }
                None => {
                    for (r, slot) in col.iter_mut().enumerate() {
                        let a0v = if r == c { 1.0 } else { 0.0 };
                        *slot = rows[r * n_v + c] - a0v;
                    }
                }
            }
        }
        if identity {
            self.lu.solve_block(&mut w);
        } else {
            // Embedded form: gather the nominal-mapped entries of every
            // column into a dense block, solve, and scatter back.
            let mut block = vec![0.0; n0 * k];
            for j in 0..k {
                let col = &w[j * n_v..(j + 1) * n_v];
                let b0 = &mut block[j * n0..(j + 1) * n0];
                for (bj, &vi) in b0.iter_mut().zip(&n2v) {
                    *bj = col[vi];
                }
            }
            self.lu.solve_block(&mut block);
            for j in 0..k {
                let col = &mut w[j * n_v..(j + 1) * n_v];
                let b0 = &block[j * n0..(j + 1) * n0];
                for (&bj, &vi) in b0.iter().zip(&n2v) {
                    col[vi] = bj;
                }
            }
        }
        // Capacitance system factors: (I_k + Vᵀ·W), where Vᵀ picks the
        // changed rows. Its scale-relative pivot test doubles as the
        // conditioning gate for the whole update.
        let mut m_lu = LuFactors::new();
        if k > 0 {
            let mut m = DenseMatrix::zeros(k);
            for (i, &ci) in changed.iter().enumerate() {
                for j in 0..k {
                    let v = w[j * n_v + ci] + if i == j { 1.0 } else { 0.0 };
                    m.set(i, j, v);
                }
            }
            if m_lu.refactor(&m).is_err() {
                return Err(SmwOutcome::IllConditioned);
            }
        }

        Ok(SmwPlan {
            n_v,
            n2v,
            identity,
            changed,
            w,
            m_lu,
            a_inf,
        })
    }

    /// Solves `A_v·x = z` by replaying a prepared update plan, writing
    /// the solution into `x` on success. `a_v` must hold the same
    /// entries the plan was [`prepare`](NominalFactors::prepare)d from
    /// (it is used by the backward-error check, which guards the actual
    /// variant system). Any outcome other than [`SmwOutcome::Solved`]
    /// leaves `x` unspecified and the caller refactors in full.
    pub fn solve_with(
        &self,
        plan: &SmwPlan,
        a_v: &DenseMatrix,
        z: &[f64],
        x: &mut [f64],
    ) -> SmwOutcome {
        let n_v = plan.n_v;
        let n0 = self.a0.dim();
        debug_assert_eq!(a_v.dim(), n_v);
        debug_assert_eq!(z.len(), n_v);
        debug_assert_eq!(x.len(), n_v);
        let k = plan.changed.len();
        let mut b0 = vec![0.0; n0];

        // y = A₀ₑ⁻¹·z.
        x.copy_from_slice(z);
        self.solve_embedded(x, &plan.n2v, &mut b0, plan.identity);
        if k > 0 {
            // s = (I_k + Vᵀ·W)⁻¹·Vᵀ·y, then x = y − W·s.
            let mut s: Vec<f64> = plan.changed.iter().map(|&c| x[c]).collect();
            plan.m_lu.solve(&mut s);
            for (j, &sj) in s.iter().enumerate() {
                if sj == 0.0 {
                    continue;
                }
                let col = &plan.w[j * n_v..(j + 1) * n_v];
                for (xi, &wi) in x.iter_mut().zip(col) {
                    *xi -= wi * sj;
                }
            }
        }

        // Backward-error check against the actual variant system.
        let mut x_inf: f64 = 0.0;
        for &xi in x.iter() {
            if !xi.is_finite() {
                return SmwOutcome::Inaccurate;
            }
            x_inf = x_inf.max(xi.abs());
        }
        let rows = a_v.entries();
        let mut r_inf: f64 = 0.0;
        let mut z_inf: f64 = 0.0;
        for r in 0..n_v {
            let row = &rows[r * n_v..(r + 1) * n_v];
            // Fixed 4-way association: deterministic, and four times the
            // throughput of a single fused multiply-add latency chain.
            let mut acc = [0.0f64; 4];
            let quads = row.chunks_exact(4).zip(x.chunks_exact(4));
            for (q, xs) in quads {
                acc[0] += q[0] * xs[0];
                acc[1] += q[1] * xs[1];
                acc[2] += q[2] * xs[2];
                acc[3] += q[3] * xs[3];
            }
            let mut dot = (acc[0] + acc[1]) + (acc[2] + acc[3]);
            let n4 = n_v & !3;
            for (&arc, &xc) in row[n4..].iter().zip(&x[n4..]) {
                dot += arc * xc;
            }
            r_inf = r_inf.max((dot - z[r]).abs());
            z_inf = z_inf.max(z[r].abs());
        }
        let bound = SMW_RESIDUAL_RTOL * (plan.a_inf * x_inf + z_inf);
        // A NaN bound (pathological matrix entries) must also count as
        // inaccurate, hence partial_cmp rather than a plain `>`.
        let within = matches!(
            r_inf.partial_cmp(&bound),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        );
        if !within {
            return SmwOutcome::Inaccurate;
        }
        SmwOutcome::Solved
    }
}

/// The reusable, matrix-dependent part of a Sherman–Morrison–Woodbury
/// update, built by [`NominalFactors::prepare`]: the changed-column set,
/// the update solves `W = A₀ₑ⁻¹·U`, the factored capacitance matrix and
/// the variant matrix norm for the residual bound. Valid for any
/// right-hand side as long as the variant matrix entries (and the
/// nominal factors the plan was built against) are unchanged.
#[derive(Debug)]
pub struct SmwPlan {
    /// Variant system dimension.
    n_v: usize,
    /// Nominal-index → variant-index embedding.
    n2v: Vec<usize>,
    /// Whether the embedding is the identity (nothing appended).
    identity: bool,
    /// Changed-column indices (at most [`SMW_MAX_RANK`]).
    changed: Vec<usize>,
    /// `W = A₀ₑ⁻¹·U`, column-major, one column per changed column.
    w: Vec<f64>,
    /// LU factors of the capacitance matrix `I_k + Vᵀ·W` (empty if the
    /// delta is empty).
    m_lu: LuFactors,
    /// `‖A_v‖∞` of the variant matrix the plan was prepared from.
    a_inf: f64,
}

impl SmwPlan {
    /// Variant system dimension the plan applies to.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n_v
    }

    /// Number of changed columns (the update rank).
    #[inline]
    pub fn rank(&self) -> usize {
        self.changed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic diagonally dominant test matrix.
    fn random_system(n: usize, seed0: u64) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(n);
        let mut seed = seed0;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        for r in 0..n {
            let mut rowsum = 0.0;
            for c in 0..n {
                if r != c {
                    let v = next();
                    m.set(r, c, v);
                    rowsum += v.abs();
                }
            }
            m.set(r, r, rowsum + 1.0);
        }
        m
    }

    /// Same-size variant (no appended unknowns): n_nodes = n+1, no vsrc.
    fn capture(a0: DenseMatrix) -> NominalFactors {
        let n = a0.dim();
        NominalFactors::capture(a0, n + 1, 0, 1e-12).expect("nominal factors")
    }

    #[test]
    fn unchanged_matrix_solves_via_nominal_path() {
        let n = 10;
        let a0 = random_system(n, 11);
        let nf = capture(a0.clone());
        let z: Vec<f64> = (0..n).map(|i| i as f64 - 4.0).collect();
        let mut x = vec![0.0; n];
        assert_eq!(nf.smw_solve(&a0, &z, n + 1, &mut x), SmwOutcome::Solved);
        let mut fresh = a0.clone();
        let mut b = z.clone();
        fresh.solve_in_place(&mut b).expect("solves");
        for (a, b) in x.iter().zip(&b) {
            assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0));
        }
    }

    #[test]
    fn rank_deltas_match_fresh_factorisation() {
        let n = 24;
        for (rank, seed) in [(1usize, 101u64), (2, 202), (3, 303)] {
            let a0 = random_system(n, seed);
            let nf = capture(a0.clone());
            let mut av = a0.clone();
            // Perturb `rank` columns.
            for j in 0..rank {
                let c = (5 + 7 * j) % n;
                for r in 0..n {
                    av.add(r, c, ((r + c) % 3) as f64 * 0.05);
                }
                av.add(c, c, 1.5);
            }
            let z: Vec<f64> = (0..n).map(|i| ((i * 3 % 7) as f64) - 2.0).collect();
            let mut x = vec![0.0; n];
            assert_eq!(
                nf.smw_solve(&av, &z, n + 1, &mut x),
                SmwOutcome::Solved,
                "rank {rank}"
            );
            let mut fresh = av.clone();
            let mut b = z.clone();
            fresh.solve_in_place(&mut b).expect("variant solves");
            for (xs, xf) in x.iter().zip(&b) {
                let tol = 1e-10 * xf.abs().max(1.0);
                assert!((xs - xf).abs() <= tol, "rank {rank}: {xs} vs {xf}");
            }
        }
    }

    #[test]
    fn too_many_changed_columns_is_a_plain_miss() {
        let n = 20;
        let a0 = random_system(n, 5);
        let nf = capture(a0.clone());
        let mut av = a0.clone();
        for c in 0..(SMW_MAX_RANK + 1) {
            av.add(0, c, 0.25);
        }
        let z = vec![1.0; n];
        let mut x = vec![0.0; n];
        assert_eq!(nf.smw_solve(&av, &z, n + 1, &mut x), SmwOutcome::NotLowRank);
    }

    #[test]
    fn singular_update_is_refused() {
        // A rank-1 update that exactly cancels the (0,0) pivot structure:
        // A_v is singular, so the capacitance matrix (or the residual)
        // must refuse the update rather than return garbage.
        let mut a0 = DenseMatrix::zeros(2);
        a0.set(0, 0, 1.0);
        a0.set(1, 1, 1.0);
        let nf = capture(a0.clone());
        let mut av = a0.clone();
        // Zero out column 0 entirely: singular variant.
        av.add(0, 0, -1.0);
        let z = vec![1.0, 1.0];
        let mut x = vec![0.0; 2];
        let out = nf.smw_solve(&av, &z, 3, &mut x);
        assert!(
            matches!(out, SmwOutcome::IllConditioned | SmwOutcome::Inaccurate),
            "singular variant must be refused, got {out:?}"
        );
    }

    #[test]
    fn appended_unknowns_embed_with_identity() {
        // Nominal 3×3; variant appends one node (index 3 in the unknown
        // vector) coupled weakly to node 0.
        let n0 = 3;
        let a0 = random_system(n0, 77);
        let nf = NominalFactors::capture(a0.clone(), n0 + 1, 0, 1e-12).expect("factors");
        let n_v = n0 + 1;
        let mut av = DenseMatrix::zeros(n_v);
        for r in 0..n0 {
            for c in 0..n0 {
                av.set(r, c, a0.get(r, c));
            }
        }
        // Appended node: g to ground plus coupling to node 0 — changes
        // column 3 and column 0.
        av.set(3, 3, 2.0);
        av.set(3, 0, -1.0);
        av.set(0, 3, -1.0);
        av.add(0, 0, 1.0);
        let z = vec![1.0, -2.0, 0.5, 0.25];
        let mut x = vec![0.0; n_v];
        assert_eq!(
            nf.smw_solve(&av, &z, n_v + 1, &mut x),
            SmwOutcome::Solved,
            "appended-node delta is rank-2"
        );
        let mut fresh = av.clone();
        let mut b = z.clone();
        fresh.solve_in_place(&mut b).expect("variant solves");
        for (xs, xf) in x.iter().zip(&b) {
            assert!((xs - xf).abs() <= 1e-10 * xf.abs().max(1.0));
        }
    }
}
