//! Simulator error type.

use std::fmt;

/// Errors produced by circuit analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The MNA matrix was numerically singular even with `gmin` applied.
    Singular {
        /// Analysis during which the singularity appeared.
        analysis: &'static str,
    },
    /// Newton–Raphson failed to converge after all homotopy fallbacks.
    NoConvergence {
        /// Analysis that failed (`"dc"` or `"transient"`).
        analysis: &'static str,
        /// Simulation time at the failing step, when applicable.
        time: Option<f64>,
        /// Iterations spent in the final attempt.
        iterations: usize,
    },
    /// An analysis parameter was invalid (e.g. non-positive timestep).
    InvalidRequest(String),
    /// The netlist references something the simulator cannot resolve
    /// (e.g. sweeping a device that is not a source).
    BadSource(String),
}

impl SimError {
    /// `true` for a structurally singular system — the MNA matrix has no
    /// usable pivot, so retrying with more iterations cannot help (though
    /// a raised `gmin` sometimes can).
    pub fn is_singular(&self) -> bool {
        matches!(self, SimError::Singular { .. })
    }

    /// `true` for a Newton–Raphson convergence failure — the system is
    /// solvable but the iteration did not settle; retrying with more
    /// iterations, tighter step limiting or a relaxed tolerance may help.
    pub fn is_no_convergence(&self) -> bool {
        matches!(self, SimError::NoConvergence { .. })
    }

    /// `true` when an escalated retry with different solver options could
    /// plausibly succeed (numerical failures, not request errors).
    pub fn is_retryable(&self) -> bool {
        self.is_singular() || self.is_no_convergence()
    }

    /// The analysis during which a numerical failure occurred, when known.
    pub fn analysis(&self) -> Option<&'static str> {
        match self {
            SimError::Singular { analysis } | SimError::NoConvergence { analysis, .. } => {
                Some(analysis)
            }
            _ => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Singular { analysis } => {
                write!(f, "singular MNA matrix during {analysis} analysis")
            }
            SimError::NoConvergence {
                analysis,
                time,
                iterations,
            } => match time {
                Some(t) => write!(
                    f,
                    "no convergence in {analysis} analysis at t = {t:.3e} s after {iterations} iterations"
                ),
                None => write!(
                    f,
                    "no convergence in {analysis} analysis after {iterations} iterations"
                ),
            },
            SimError::InvalidRequest(reason) => write!(f, "invalid analysis request: {reason}"),
            SimError::BadSource(name) => {
                write!(f, "device `{name}` is not a sweepable source")
            }
        }
    }
}

impl std::error::Error for SimError {}
