//! Small-signal AC analysis.
//!
//! The defect-oriented literature this paper builds on (Sachdev, ESSCIRC
//! 1994) uses "simple DC, Transient and AC measurements"; this module
//! supplies the third kind: the circuit is linearised around its DC
//! operating point and the complex system `(G + jωC)·x = b` is solved per
//! frequency, with one designated source carrying a unit AC stimulus.

use crate::engine::{OpPoint, Simulator};
use crate::error::SimError;
use crate::matrix::SingularInfo;
use crate::models::{diode_eval, mosfet_eval, switch_eval};
use dotm_netlist::{DeviceKind, DiodeParams, NodeId};

/// A complex number (the workspace stays dependency-free, so a minimal
/// implementation lives here).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Magnitude in decibels (20·log₁₀|·|).
    pub fn db(self) -> f64 {
        20.0 * self.abs().max(1e-300).log10()
    }

    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    fn sub(self, other: Complex) -> Complex {
        Complex::new(self.re - other.re, self.im - other.im)
    }

    fn div(self, other: Complex) -> Complex {
        // Smith's algorithm: the textbook (ac + bd)/(c² + d²) form
        // under/overflows once |other| strays past ~1e±154, because the
        // squared denominator leaves f64 range long before the quotient
        // does. Dividing by the larger component first keeps every
        // intermediate within a couple of ULP of the operand scale, so
        // badly-scaled (but well-conditioned) AC systems stay solvable.
        if other.re.abs() >= other.im.abs() {
            let r = other.im / other.re;
            let d = other.re + other.im * r;
            Complex::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = other.re / other.im;
            let d = other.re * r + other.im;
            Complex::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

/// Dense complex matrix with LU solve (partial pivoting by magnitude).
struct ComplexMatrix {
    n: usize,
    data: Vec<Complex>,
}

impl ComplexMatrix {
    fn zeros(n: usize) -> Self {
        ComplexMatrix {
            n,
            data: vec![Complex::default(); n * n],
        }
    }

    #[inline]
    fn add(&mut self, r: usize, c: usize, v: Complex) {
        let e = &mut self.data[r * self.n + c];
        e.re += v.re;
        e.im += v.im;
    }

    fn solve_in_place(&mut self, b: &mut [Complex]) -> Result<(), SingularInfo> {
        let n = self.n;
        let a = &mut self.data;
        for k in 0..n {
            let mut piv = k;
            let mut max = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > max {
                    max = v;
                    piv = i;
                }
            }
            // Scale-relative singularity test, mirroring the real
            // `DenseMatrix::solve_in_place`: the pivot must be meaningful
            // relative to the largest magnitude in the factored column,
            // not relative to an absolute floor — badly-scaled but
            // well-conditioned AC systems (huge R, tiny ωC) must solve.
            let mut col_max = max;
            for i in 0..k {
                col_max = col_max.max(a[i * n + k].abs());
            }
            if max.is_nan() || max <= col_max * 1e-14 {
                return Err(SingularInfo {
                    col: k,
                    pivot_mag: max,
                });
            }
            if piv != k {
                for j in 0..n {
                    a.swap(k * n + j, piv * n + j);
                }
                b.swap(k, piv);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let factor = a[i * n + k].div(pivot);
                if factor.re == 0.0 && factor.im == 0.0 {
                    continue;
                }
                a[i * n + k] = Complex::default();
                for j in (k + 1)..n {
                    let s = factor.mul(a[k * n + j]);
                    a[i * n + j] = a[i * n + j].sub(s);
                }
                b[i] = b[i].sub(factor.mul(b[k]));
            }
        }
        for k in (0..n).rev() {
            let mut acc = b[k];
            for j in (k + 1)..n {
                acc = acc.sub(a[k * n + j].mul(b[j]));
            }
            b[k] = acc.div(a[k * n + k]);
        }
        Ok(())
    }
}

/// Result of an AC sweep: complex node voltages per frequency, for a unit
/// AC stimulus on the designated source.
#[derive(Debug, Clone)]
pub struct AcResult {
    freqs: Vec<f64>,
    /// `solutions[f][unknown]`
    solutions: Vec<Vec<Complex>>,
}

impl AcResult {
    /// The analysed frequencies (Hz).
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Complex voltage of `node` at frequency index `k`.
    pub fn voltage(&self, k: usize, node: NodeId) -> Complex {
        if node.is_ground() {
            Complex::default()
        } else {
            self.solutions[k][node.index() - 1]
        }
    }

    /// Magnitude response of `node` across the sweep.
    pub fn magnitude(&self, node: NodeId) -> Vec<f64> {
        (0..self.freqs.len())
            .map(|k| self.voltage(k, node).abs())
            .collect()
    }

    /// Index of the −3 dB point of `node` relative to its first-frequency
    /// magnitude, if the response crosses it.
    pub fn minus_3db_index(&self, node: NodeId) -> Option<usize> {
        let mags = self.magnitude(node);
        let reference = *mags.first()?;
        let target = reference / 2.0_f64.sqrt();
        mags.iter().position(|&m| m < target)
    }
}

impl<'a> Simulator<'a> {
    /// Runs an AC sweep: linearises around `op` and applies a unit AC
    /// stimulus to the voltage source named `source`, solving at each
    /// frequency in `freqs`.
    ///
    /// ```
    /// use dotm_netlist::{Netlist, Waveform};
    /// use dotm_sim::Simulator;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut nl = Netlist::new("rc");
    /// let inp = nl.node("in");
    /// let out = nl.node("out");
    /// nl.add_vsource("VIN", inp, Netlist::GROUND, Waveform::dc(0.0))?;
    /// nl.add_resistor("R1", inp, out, 1e3)?;
    /// nl.add_capacitor("C1", out, Netlist::GROUND, 1e-9)?;
    /// let mut sim = Simulator::new(&nl);
    /// let op = sim.dc_op()?;
    /// let ac = sim.ac(&op, "VIN", &[1e3, 1e9])?;
    /// assert!(ac.voltage(0, out).abs() > 0.99); // passband
    /// assert!(ac.voltage(1, out).abs() < 0.01); // far beyond the pole
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    /// [`SimError::BadSource`] if `source` is not a voltage source;
    /// [`SimError::Singular`] if the linearised system is singular.
    pub fn ac(&mut self, op: &OpPoint, source: &str, freqs: &[f64]) -> Result<AcResult, SimError> {
        let nl = self.netlist();
        let ac_id = nl
            .device_id(source)
            .filter(|id| {
                matches!(
                    nl.device_by_id(*id).map(|d| &d.kind),
                    Some(DeviceKind::Vsource { .. })
                )
            })
            .ok_or_else(|| SimError::BadSource(source.to_string()))?;
        let n_nodes = nl.node_count();
        let vsrc: Vec<_> = nl
            .devices()
            .filter(|(_, d)| matches!(d.kind, DeviceKind::Vsource { .. }))
            .map(|(id, _)| id)
            .collect();
        let n = (n_nodes - 1) + vsrc.len();
        let row = |node: NodeId| -> Option<usize> {
            if node.is_ground() {
                None
            } else {
                Some(node.index() - 1)
            }
        };
        let volt = |node: NodeId| op.voltage(node);
        let gmin = self.options().gmin;

        let mut solutions = Vec::with_capacity(freqs.len());
        for &f in freqs {
            let w = 2.0 * std::f64::consts::PI * f;
            let t_asm = dotm_obs::start();
            let mut a = ComplexMatrix::zeros(n);
            let mut b = vec![Complex::default(); n];
            for r in 0..(n_nodes - 1) {
                a.add(r, r, Complex::new(gmin, 0.0));
            }
            let stamp_g = |a: &mut ComplexMatrix, p: NodeId, q: NodeId, g: Complex| {
                if let Some(rp) = row(p) {
                    a.add(rp, rp, g);
                    if let Some(rq) = row(q) {
                        a.add(rp, rq, Complex::new(-g.re, -g.im));
                        a.add(rq, rp, Complex::new(-g.re, -g.im));
                        a.add(rq, rq, g);
                    }
                } else if let Some(rq) = row(q) {
                    a.add(rq, rq, g);
                }
            };
            let stamp_vccs = |a: &mut ComplexMatrix,
                              out_p: NodeId,
                              out_q: NodeId,
                              ctl_p: NodeId,
                              ctl_q: NodeId,
                              g: f64| {
                for (out, sign) in [(out_p, 1.0), (out_q, -1.0)] {
                    if let Some(ro) = row(out) {
                        if let Some(rc) = row(ctl_p) {
                            a.add(ro, rc, Complex::new(sign * g, 0.0));
                        }
                        if let Some(rc) = row(ctl_q) {
                            a.add(ro, rc, Complex::new(-sign * g, 0.0));
                        }
                    }
                }
            };

            for (id, dev) in nl.devices() {
                match &dev.kind {
                    DeviceKind::Resistor { a: p, b: q, ohms } => {
                        stamp_g(&mut a, *p, *q, Complex::new(1.0 / ohms, 0.0));
                    }
                    DeviceKind::Capacitor { a: p, b: q, farads } => {
                        stamp_g(&mut a, *p, *q, Complex::new(0.0, w * farads));
                    }
                    DeviceKind::Vsource { pos, neg, .. } => {
                        let k = vsrc.iter().position(|&v| v == id).expect("collected");
                        let br = (n_nodes - 1) + k;
                        if let Some(rp) = row(*pos) {
                            a.add(rp, br, Complex::new(1.0, 0.0));
                            a.add(br, rp, Complex::new(1.0, 0.0));
                        }
                        if let Some(rq) = row(*neg) {
                            a.add(rq, br, Complex::new(-1.0, 0.0));
                            a.add(br, rq, Complex::new(-1.0, 0.0));
                        }
                        // Only the designated source carries AC drive.
                        b[br] = if id == ac_id {
                            Complex::new(1.0, 0.0)
                        } else {
                            Complex::default()
                        };
                    }
                    DeviceKind::Isource { .. } => {
                        // Independent current sources are AC-quiet.
                    }
                    DeviceKind::Diode {
                        anode,
                        cathode,
                        params,
                    } => {
                        let (_, gd) = diode_eval(volt(*anode) - volt(*cathode), params);
                        stamp_g(&mut a, *anode, *cathode, Complex::new(gd, 0.0));
                    }
                    DeviceKind::Mosfet {
                        d,
                        g,
                        s,
                        b: bulk,
                        ty,
                        params,
                    } => {
                        let ch = mosfet_eval(
                            volt(*g) - volt(*s),
                            volt(*d) - volt(*s),
                            volt(*bulk) - volt(*s),
                            *ty,
                            params,
                        );
                        stamp_vccs(&mut a, *d, *s, *g, *s, ch.gm);
                        stamp_vccs(&mut a, *d, *s, *d, *s, ch.gds);
                        stamp_vccs(&mut a, *d, *s, *bulk, *s, ch.gmbs);
                        // Junction small-signal conductances.
                        let jp = DiodeParams {
                            is: params.is_leak,
                            n: 1.0,
                        };
                        let junctions = match ty {
                            dotm_netlist::MosType::Nmos => [(*bulk, *d), (*bulk, *s)],
                            dotm_netlist::MosType::Pmos => [(*d, *bulk), (*s, *bulk)],
                        };
                        for (an, ca) in junctions {
                            let (_, gd) = diode_eval(volt(an) - volt(ca), &jp);
                            stamp_g(&mut a, an, ca, Complex::new(gd, 0.0));
                        }
                        // Device capacitances.
                        let cg = 0.5 * params.gate_cap();
                        stamp_g(&mut a, *g, *s, Complex::new(0.0, w * cg));
                        stamp_g(&mut a, *g, *d, Complex::new(0.0, w * cg));
                        stamp_g(&mut a, *d, *bulk, Complex::new(0.0, w * params.cj));
                        stamp_g(&mut a, *s, *bulk, Complex::new(0.0, w * params.cj));
                    }
                    DeviceKind::Switch {
                        a: p,
                        b: q,
                        cp,
                        cn,
                        params,
                    } => {
                        let (g, _) = switch_eval(volt(*cp) - volt(*cn), params);
                        stamp_g(&mut a, *p, *q, Complex::new(g, 0.0));
                    }
                }
            }
            dotm_obs::phase(dotm_obs::Phase::Assembly, t_asm);
            let t_lu = dotm_obs::start();
            let ok = a.solve_in_place(&mut b);
            dotm_obs::phase(dotm_obs::Phase::Lu, t_lu);
            if ok.is_err() {
                return Err(SimError::Singular { analysis: "ac" });
            }
            solutions.push(b[..(n_nodes - 1)].to_vec());
        }
        Ok(AcResult {
            freqs: freqs.to_vec(),
            solutions,
        })
    }
}

/// Builds a logarithmically spaced frequency grid (decades between
/// `f_lo` and `f_hi`, `points_per_decade` each).
pub fn log_sweep(f_lo: f64, f_hi: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(f_lo > 0.0 && f_hi > f_lo && points_per_decade > 0);
    let decades = (f_hi / f_lo).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize;
    (0..=n)
        .map(|k| f_lo * 10f64.powf(k as f64 / points_per_decade as f64))
        .take_while(|&f| f <= f_hi * 1.0001)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dotm_netlist::{MosType, MosfetParams, Netlist, Waveform};

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(3.0, 4.0);
        assert!((a.abs() - 5.0).abs() < 1e-12);
        let b = Complex::new(1.0, -1.0);
        let p = a.mul(b);
        assert!((p.re - 7.0).abs() < 1e-12 && (p.im - 1.0).abs() < 1e-12);
        let q = p.div(b);
        assert!((q.re - a.re).abs() < 1e-12 && (q.im - a.im).abs() < 1e-12);
        assert!((Complex::new(10.0, 0.0).db() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn rc_lowpass_pole() {
        // R = 1k, C = 1µF → f_c = 159.15 Hz.
        let mut nl = Netlist::new("rc");
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.add_vsource("VIN", inp, Netlist::GROUND, Waveform::dc(0.0))
            .unwrap();
        nl.add_resistor("R1", inp, out, 1e3).unwrap();
        nl.add_capacitor("C1", out, Netlist::GROUND, 1e-6).unwrap();
        let mut sim = Simulator::new(&nl);
        let op = sim.dc_op().unwrap();
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-6);
        let ac = sim.ac(&op, "VIN", &[fc / 100.0, fc, fc * 100.0]).unwrap();
        let g_low = ac.voltage(0, out).abs();
        let g_pole = ac.voltage(1, out).abs();
        let g_high = ac.voltage(2, out).abs();
        assert!((g_low - 1.0).abs() < 1e-3, "low-f gain {g_low}");
        assert!(
            (g_pole - 1.0 / 2.0f64.sqrt()).abs() < 1e-3,
            "pole gain {g_pole}"
        );
        assert!((g_high - 0.01).abs() < 1e-3, "high-f gain {g_high}");
        // Phase at the pole is −45°.
        let phase = ac.voltage(1, out).arg().to_degrees();
        assert!((phase + 45.0).abs() < 0.5, "phase {phase}");
    }

    #[test]
    fn divider_is_flat() {
        let mut nl = Netlist::new("div");
        let inp = nl.node("in");
        let mid = nl.node("mid");
        nl.add_vsource("VIN", inp, Netlist::GROUND, Waveform::dc(1.0))
            .unwrap();
        nl.add_resistor("R1", inp, mid, 1e3).unwrap();
        nl.add_resistor("R2", mid, Netlist::GROUND, 1e3).unwrap();
        let mut sim = Simulator::new(&nl);
        let op = sim.dc_op().unwrap();
        let freqs = log_sweep(1.0, 1e9, 2);
        let ac = sim.ac(&op, "VIN", &freqs).unwrap();
        for m in ac.magnitude(mid) {
            assert!((m - 0.5).abs() < 1e-6);
        }
        assert!(ac.minus_3db_index(mid).is_none());
    }

    #[test]
    fn common_source_gain_and_rolloff() {
        // NMOS common-source with 10k load: |gain| ≈ gm·(RD ∥ ro) at low
        // frequency, rolling off through the gate/junction caps.
        let mut nl = Netlist::new("cs");
        let vdd = nl.node("vdd");
        let g = nl.node("g");
        let d = nl.node("d");
        nl.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(5.0))
            .unwrap();
        nl.add_vsource("VG", g, Netlist::GROUND, Waveform::dc(1.2))
            .unwrap();
        nl.add_resistor("RD", vdd, d, 10e3).unwrap();
        // Explicit load capacitance sets a clean dominant pole.
        nl.add_capacitor("CL", d, Netlist::GROUND, 10e-12).unwrap();
        let p = MosfetParams::nmos_default();
        nl.add_mosfet(
            "M1",
            d,
            g,
            Netlist::GROUND,
            Netlist::GROUND,
            MosType::Nmos,
            p.clone(),
        )
        .unwrap();
        let mut sim = Simulator::new(&nl);
        let op = sim.dc_op().unwrap();
        let vd = op.voltage(d);
        assert!(vd > 1.0, "device must be saturated, vd = {vd}");
        let ch = mosfet_eval(1.2, vd, 0.0, MosType::Nmos, &p);
        let rout = 1.0 / (1.0 / 10e3 + ch.gds);
        let expect = ch.gm * rout;
        let freqs = log_sweep(1e3, 1e9, 4);
        let ac = sim.ac(&op, "VG", &freqs).unwrap();
        let g_low = ac.voltage(0, d).abs();
        assert!(
            (g_low - expect).abs() / expect < 0.02,
            "gain {g_low} vs gm·rout {expect}"
        );
        // −3 dB near 1/(2π·rout·CL).
        let k = ac.minus_3db_index(d).expect("must roll off");
        let fc = 1.0 / (2.0 * std::f64::consts::PI * rout * 10e-12);
        let f_found = ac.freqs()[k];
        assert!(
            f_found / fc > 0.5 && f_found / fc < 2.0,
            "rolloff at {f_found:.3e}, expected near {fc:.3e}"
        );
    }

    #[test]
    fn log_sweep_spacing() {
        let f = log_sweep(1.0, 1000.0, 1);
        assert_eq!(f.len(), 4);
        assert!((f[3] - 1000.0).abs() < 1e-9);
        let f = log_sweep(10.0, 100.0, 10);
        assert_eq!(f.len(), 11);
    }

    #[test]
    fn complex_lu_scale_invariant() {
        // Unit-level mirror of the matrix.rs regression: a well-conditioned
        // 2×2 complex system scaled to ~1e-302 must solve (the old absolute
        // 1e-300 floor declared it singular), and exact cancellation must
        // stay singular at any scale.
        let s = 1e-302;
        let mut m = ComplexMatrix::zeros(2);
        m.add(0, 0, Complex::new(2.0 * s, s));
        m.add(0, 1, Complex::new(s, 0.0));
        m.add(1, 0, Complex::new(s, 0.0));
        m.add(1, 1, Complex::new(3.0 * s, -s));
        let mut b = vec![Complex::new(3.0 * s, 0.0), Complex::new(5.0 * s, 0.0)];
        assert!(
            m.solve_in_place(&mut b).is_ok(),
            "scaled complex system must solve"
        );
        // Residual check against the original entries.
        let a00 = Complex::new(2.0 * s, s);
        let a01 = Complex::new(s, 0.0);
        let r0 = a00.mul(b[0]).sub(Complex::new(3.0 * s, 0.0));
        let r0 = Complex::new(r0.re + a01.mul(b[1]).re, r0.im + a01.mul(b[1]).im);
        assert!(r0.abs() / s < 1e-10, "residual {:e}", r0.abs() / s);

        for scale in [1e-250, 1.0] {
            let mut m = ComplexMatrix::zeros(2);
            m.add(0, 0, Complex::new(scale, scale));
            m.add(0, 1, Complex::new(2.0 * scale, 2.0 * scale));
            m.add(1, 0, Complex::new(2.0 * scale, 2.0 * scale));
            m.add(1, 1, Complex::new(4.0 * scale, 4.0 * scale));
            let mut b = vec![Complex::new(scale, 0.0), Complex::new(scale, 0.0)];
            let info = m
                .solve_in_place(&mut b)
                .expect_err("cancellation must stay singular");
            assert_eq!(info.col, 1, "cancellation shows at the second column");
        }
    }

    #[test]
    fn badly_scaled_rc_ac_solves() {
        // End-to-end regression for the absolute singularity floor: a huge
        // resistor (1e305 Ω) into a tiny capacitor, gmin disabled, at the
        // frequency where R·ωC = 1. Every matrix entry in the output
        // node's column is far below 1e-300, so the old complex LU bailed
        // out as Singular; the circuit is a perfectly ordinary RC divider
        // with gain 1/(1+j) at this frequency.
        let mut nl = Netlist::new("huge_rc");
        let inp = nl.node("in");
        let out = nl.node("out");
        nl.add_vsource("VIN", inp, Netlist::GROUND, Waveform::dc(0.0))
            .unwrap();
        nl.add_resistor("R1", inp, out, 1e305).unwrap();
        nl.add_capacitor("C1", out, Netlist::GROUND, 1e-18).unwrap();
        let mut sim = Simulator::new(&nl);
        let op = sim.dc_op().unwrap();
        sim.options_mut().gmin = 0.0;
        // R·ωC = 1  ⇒  f = 1 / (2π · 1e305 · 1e-18)
        let f = 1.0 / (2.0 * std::f64::consts::PI * 1e305 * 1e-18);
        let ac = sim.ac(&op, "VIN", &[f]).expect("well-conditioned AC");
        let g = ac.voltage(0, out);
        assert!(
            (g.abs() - 1.0 / 2.0f64.sqrt()).abs() < 1e-6,
            "|gain| {} vs 1/√2",
            g.abs()
        );
        let phase = g.arg().to_degrees();
        assert!((phase + 45.0).abs() < 1e-3, "phase {phase}");
    }

    #[test]
    fn truly_singular_ac_still_rejected() {
        // A genuinely floating node with gmin off must still be reported
        // as Singular — the relative pivot test may not paper over real
        // rank deficiency.
        let mut nl = Netlist::new("float");
        let inp = nl.node("in");
        let _orphan = nl.node("float");
        nl.add_vsource("VIN", inp, Netlist::GROUND, Waveform::dc(0.0))
            .unwrap();
        let mut sim = Simulator::new(&nl);
        let op = sim.dc_op().unwrap();
        sim.options_mut().gmin = 0.0;
        assert!(matches!(
            sim.ac(&op, "VIN", &[1e3]),
            Err(SimError::Singular { analysis: "ac" })
        ));
    }

    #[test]
    fn ac_rejects_non_source() {
        let mut nl = Netlist::new("t");
        let a = nl.node("a");
        nl.add_resistor("R1", a, Netlist::GROUND, 1e3).unwrap();
        let mut sim = Simulator::new(&nl);
        let op = sim.dc_op().unwrap();
        assert!(matches!(
            sim.ac(&op, "R1", &[1e3]),
            Err(SimError::BadSource(_))
        ));
    }
}
