//! # dotm-obs — zero-dependency structured observability
//!
//! The campaign pipeline is a long-running fleet job; deciding what to
//! optimise next requires knowing where the wall-clock actually goes
//! (Newton vs LU vs assembly vs store I/O). This crate provides that
//! attribution as a strict *side channel*:
//!
//! - **Spans** — hierarchical timed regions (campaign → macro → class →
//!   measure → rung), linked per thread through a thread-local parent
//!   stack.
//! - **Phases** — fixed low-overhead accumulators ([`Phase`]) for the
//!   solver/store hot paths: one `(calls, ns)` atomic pair each, updated
//!   with the [`start`]/[`phase`] pattern that costs a single relaxed
//!   atomic load when tracing is off.
//! - **Counters** — a name → value registry that unifies the solver's
//!   15-word `SimStats`, the measurement-cache and the persistent-store
//!   counters into one export.
//! - **Exporters** — an NDJSON event log ([`export_ndjson`]) and a
//!   `chrome://tracing`-compatible trace file ([`export_chrome`]), plus a
//!   human-readable phase table ([`phase_table`]).
//!
//! ## Determinism contract
//!
//! Nothing recorded here may ever reach a report fingerprint, a journal
//! byte or a store entry: wall-clock data lives **only** in the exports
//! and in output printed to stderr. The workspace determinism suite runs
//! the full pipeline trace-on and trace-off and asserts the deterministic
//! artifacts are bit-identical — at any thread count.
//!
//! The recorder is a process-wide global, off by default. When off, every
//! entry point is a cheap early-out ([`span`] allocates nothing, [`start`]
//! returns `None`), so instrumented hot loops pay one relaxed load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Fixed hot-path phases, each backed by one `(calls, ns)` accumulator.
///
/// `Newton` times whole Newton–Raphson solves and therefore *includes*
/// the `Assembly`, `Lu` and `RankUpdate` time spent inside them;
/// [`phase_table`] prints the exclusive remainder as `newton (other)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// MNA matrix + RHS assembly (stamping), once per Newton iteration.
    Assembly,
    /// Batched-assembly baseline construction (plan split + static-op
    /// baseline builds). Runs *inside* `Assembly` spans, so `Assembly`
    /// includes it; the remainder is the per-iteration replay cost.
    BatchAssembly,
    /// Dense LU factor + solve, real (DC/transient) and complex (AC).
    Lu,
    /// Sherman–Morrison–Woodbury rank-update solve attempts (delta scan,
    /// triangular solves, residual check) — hits, misses and fallbacks
    /// alike. Exact factor-cache hits still run through `Lu`.
    RankUpdate,
    /// A whole Newton–Raphson solve (includes Assembly, Lu, RankUpdate).
    Newton,
    /// In-memory measurement-cache lookup.
    CacheLookup,
    /// Persistent-store entry load (hit or miss).
    StoreLoad,
    /// Persistent-store entry write.
    StoreWrite,
    /// Checkpoint-journal record append.
    Journal,
    /// Lockstep variant priming: per-lane first-iteration DC system
    /// capture plus the blocked multi-matrix LU factor over the class's
    /// variant lanes, and the primed-system adoption inside Newton.
    /// Work recorded here replaces `Assembly`/`Lu` work the primed
    /// lanes no longer do.
    VariantLockstep,
}

/// All phases, in display order.
pub const PHASES: [Phase; 10] = [
    Phase::Newton,
    Phase::Assembly,
    Phase::BatchAssembly,
    Phase::Lu,
    Phase::RankUpdate,
    Phase::VariantLockstep,
    Phase::CacheLookup,
    Phase::StoreLoad,
    Phase::StoreWrite,
    Phase::Journal,
];

impl Phase {
    /// Stable lower-case name used in exports and tables.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Assembly => "assembly",
            Phase::BatchAssembly => "batch_assembly",
            Phase::Lu => "lu",
            Phase::RankUpdate => "rank_update",
            Phase::Newton => "newton",
            Phase::CacheLookup => "cache_lookup",
            Phase::StoreLoad => "store_load",
            Phase::StoreWrite => "store_write",
            Phase::Journal => "journal",
            Phase::VariantLockstep => "variant_lockstep",
        }
    }

    fn idx(self) -> usize {
        match self {
            Phase::Assembly => 0,
            Phase::Lu => 1,
            Phase::RankUpdate => 2,
            Phase::Newton => 3,
            Phase::CacheLookup => 4,
            Phase::StoreLoad => 5,
            Phase::StoreWrite => 6,
            Phase::Journal => 7,
            Phase::BatchAssembly => 8,
            Phase::VariantLockstep => 9,
        }
    }
}

const N_PHASES: usize = 10;

#[derive(Default)]
struct PhaseSlot {
    calls: AtomicU64,
    ns: AtomicU64,
}

struct SpanEvent {
    id: u64,
    parent: Option<u64>,
    tid: u64,
    name: String,
    cat: &'static str,
    start_ns: u64,
    dur_ns: u64,
}

struct Recorder {
    enabled: AtomicBool,
    t0: Instant,
    next_id: AtomicU64,
    next_tid: AtomicU64,
    spans: Mutex<Vec<SpanEvent>>,
    counters: Mutex<BTreeMap<String, u64>>,
    phases: [PhaseSlot; N_PHASES],
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();

fn rec() -> &'static Recorder {
    RECORDER.get_or_init(|| Recorder {
        enabled: AtomicBool::new(false),
        t0: Instant::now(),
        next_id: AtomicU64::new(0),
        next_tid: AtomicU64::new(0),
        spans: Mutex::new(Vec::new()),
        counters: Mutex::new(BTreeMap::new()),
        phases: Default::default(),
    })
}

thread_local! {
    static TID: Cell<Option<u64>> = const { Cell::new(None) };
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn current_tid(r: &Recorder) -> u64 {
    TID.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let id = r.next_tid.fetch_add(1, Ordering::Relaxed);
            t.set(Some(id));
            id
        }
    })
}

/// Turns the global recorder on or off. Off is the default; when off,
/// every other entry point is a cheap no-op.
pub fn set_enabled(on: bool) {
    rec().enabled.store(on, Ordering::Relaxed);
}

/// Whether the recorder is currently on.
pub fn enabled() -> bool {
    rec().enabled.load(Ordering::Relaxed)
}

/// Clears all recorded spans, counters and phase accumulators (the
/// enabled flag is left as-is). Intended for tests and for reuse between
/// independent runs in one process.
pub fn reset() {
    let r = rec();
    r.spans.lock().unwrap_or_else(|e| e.into_inner()).clear();
    r.counters.lock().unwrap_or_else(|e| e.into_inner()).clear();
    for slot in &r.phases {
        slot.calls.store(0, Ordering::Relaxed);
        slot.ns.store(0, Ordering::Relaxed);
    }
}

/// Starts a phase timing: `Some(now)` when tracing is on, `None` (one
/// relaxed atomic load, no clock read) when off. Pass the result to
/// [`phase`] when the region ends.
#[inline]
pub fn start() -> Option<Instant> {
    if rec().enabled.load(Ordering::Relaxed) {
        Some(Instant::now())
    } else {
        None
    }
}

/// Ends a phase timing started with [`start`], attributing the elapsed
/// time to `p`. A `None` start (tracing off) is a no-op.
#[inline]
pub fn phase(p: Phase, started: Option<Instant>) {
    if let Some(t) = started {
        let slot = &rec().phases[p.idx()];
        slot.calls.fetch_add(1, Ordering::Relaxed);
        slot.ns
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Adds `delta` to the named counter (created at zero on first use).
/// No-op while tracing is off.
pub fn counter(name: &str, delta: u64) {
    let r = rec();
    if !r.enabled.load(Ordering::Relaxed) {
        return;
    }
    let mut map = r.counters.lock().unwrap_or_else(|e| e.into_inner());
    *map.entry(name.to_string()).or_insert(0) += delta;
}

/// Snapshot of every named counter, sorted by name (the registry is a
/// `BTreeMap`, so the order is stable across runs). Reads whatever has
/// accumulated since the last [`reset`] even when tracing has since been
/// turned off — this is the service surface's `/metrics` window into a
/// run in progress, so it must be safe to call concurrently with
/// [`counter`] updates from worker threads.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    let r = rec();
    let map = r.counters.lock().unwrap_or_else(|e| e.into_inner());
    map.iter()
        .map(|(name, value)| (name.clone(), *value))
        .collect()
}

/// A hierarchical timed region. Created by [`span`]; the region ends and
/// the event is recorded when the guard drops. Spans nest per thread via
/// a thread-local parent stack.
#[must_use = "a span measures until it is dropped"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    id: u64,
    parent: Option<u64>,
    tid: u64,
    name: String,
    cat: &'static str,
    start: Instant,
}

/// Opens a span named `name` in category `cat`. When tracing is off this
/// allocates nothing and the returned guard is inert — but the caller's
/// argument expression is still evaluated, so hot loops that `format!` a
/// name should use [`span_with`] instead.
pub fn span(name: impl Into<String>, cat: &'static str) -> Span {
    let r = rec();
    if !r.enabled.load(Ordering::Relaxed) {
        return Span { inner: None };
    }
    open_span(r, name.into(), cat)
}

/// Like [`span`], but the name closure is only invoked when tracing is
/// on — zero allocation on the trace-off path.
pub fn span_with(cat: &'static str, name: impl FnOnce() -> String) -> Span {
    let r = rec();
    if !r.enabled.load(Ordering::Relaxed) {
        return Span { inner: None };
    }
    open_span(r, name(), cat)
}

fn open_span(r: &'static Recorder, name: String, cat: &'static str) -> Span {
    let id = r.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    let tid = current_tid(r);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    Span {
        inner: Some(SpanInner {
            id,
            parent,
            tid,
            name,
            cat,
            start: Instant::now(),
        }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_ns = inner.start.elapsed().as_nanos() as u64;
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&inner.id) {
                s.pop();
            } else {
                // Out-of-order drop — remove wherever it is so the stack
                // stays consistent for the surviving spans.
                s.retain(|&id| id != inner.id);
            }
        });
        let r = rec();
        let start_ns = inner.start.duration_since(r.t0).as_nanos() as u64;
        r.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(SpanEvent {
                id: inner.id,
                parent: inner.parent,
                tid: inner.tid,
                name: inner.name,
                cat: inner.cat,
                start_ns,
                dur_ns,
            });
    }
}

/// One phase accumulator snapshot: `(name, calls, total_ns)`.
pub type PhaseTotal = (&'static str, u64, u64);

/// Snapshot of all phase accumulators, in display order.
pub fn phase_totals() -> Vec<PhaseTotal> {
    let r = rec();
    PHASES
        .iter()
        .map(|p| {
            let slot = &r.phases[p.idx()];
            (
                p.name(),
                slot.calls.load(Ordering::Relaxed),
                slot.ns.load(Ordering::Relaxed),
            )
        })
        .collect()
}

fn fmt_secs(ns: u64) -> String {
    format!("{:.3}s", ns as f64 / 1e9)
}

/// Renders the per-phase summary table (calls, total, mean per call).
/// `Newton` includes its `Assembly`/`Lu`/`RankUpdate` children, so the
/// exclusive remainder is shown as `newton (other)`.
pub fn phase_table() -> String {
    let totals = phase_totals();
    let mut out = String::new();
    let _ = writeln!(out, "phase profile:");
    let _ = writeln!(
        out,
        "  {:<16} {:>10} {:>12} {:>12}",
        "phase", "calls", "total", "mean"
    );
    let mut newton = (0u64, 0u64);
    let mut inner = 0u64;
    for (name, calls, ns) in &totals {
        if *calls == 0 {
            continue;
        }
        match *name {
            "newton" => newton = (*calls, *ns),
            "assembly" | "lu" | "rank_update" => inner += ns,
            _ => {}
        }
        let mean = *ns as f64 / (*calls).max(1) as f64 / 1e9;
        let _ = writeln!(
            out,
            "  {:<16} {:>10} {:>12} {:>11.2}ms",
            name,
            calls,
            fmt_secs(*ns),
            mean * 1e3
        );
    }
    if newton.0 > 0 {
        let other = newton.1.saturating_sub(inner);
        let _ = writeln!(
            out,
            "  {:<16} {:>10} {:>12}",
            "newton (other)",
            newton.0,
            fmt_secs(other)
        );
    }
    out
}

fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serialises the recorded events as NDJSON: one `span`, `phase` or
/// `counter` object per line. Returns the file contents.
pub fn render_ndjson() -> String {
    let r = rec();
    let mut out = String::new();
    {
        let spans = r.spans.lock().unwrap_or_else(|e| e.into_inner());
        for s in spans.iter() {
            out.push_str("{\"type\":\"span\",\"id\":");
            let _ = write!(out, "{}", s.id);
            if let Some(p) = s.parent {
                let _ = write!(out, ",\"parent\":{p}");
            }
            let _ = write!(out, ",\"tid\":{},\"name\":\"", s.tid);
            esc(&s.name, &mut out);
            out.push_str("\",\"cat\":\"");
            esc(s.cat, &mut out);
            let _ = writeln!(
                out,
                "\",\"start_ns\":{},\"dur_ns\":{}}}",
                s.start_ns, s.dur_ns
            );
        }
    }
    for (name, calls, ns) in phase_totals() {
        if calls == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"phase\",\"name\":\"{name}\",\"calls\":{calls},\"total_ns\":{ns}}}"
        );
    }
    let counters = r.counters.lock().unwrap_or_else(|e| e.into_inner());
    for (name, value) in counters.iter() {
        out.push_str("{\"type\":\"counter\",\"name\":\"");
        esc(name, &mut out);
        let _ = writeln!(out, "\",\"value\":{value}}}");
    }
    out
}

/// Writes the NDJSON event log to `path`.
///
/// # Errors
/// Propagates the underlying file I/O error.
pub fn export_ndjson(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, render_ndjson())
}

/// Serialises the recorded spans as a `chrome://tracing` /
/// [Perfetto](https://ui.perfetto.dev)-loadable JSON trace (`ph: "X"`
/// complete events; timestamps in microseconds).
pub fn render_chrome() -> String {
    let r = rec();
    let spans = r.spans.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        esc(&s.name, &mut out);
        out.push_str("\",\"cat\":\"");
        esc(s.cat, &mut out);
        let _ = write!(
            out,
            "\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
            s.tid,
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Writes the chrome trace to `path`.
///
/// # Errors
/// Propagates the underlying file I/O error.
pub fn export_chrome(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, render_chrome())
}

// ---------------------------------------------------------------------
// NDJSON validation (hand-rolled: the workspace is dependency-free, and
// the verify gate needs a JSON check without reaching for python).
// ---------------------------------------------------------------------

/// A parsed scalar from the miniature JSON reader.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(f64),
    Null,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "dangling escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "short \\u escape".to_string())?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| "bad \\u escape".to_string())?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                other => out.push(other as char),
            }
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') => {
                if self.bytes.get(self.pos..self.pos + 4) == Some(b"null") {
                    self.pos += 4;
                    Ok(Json::Null)
                } else {
                    Err("bad literal".to_string())
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| e.to_string())?
                    .parse::<f64>()
                    .map(Json::Num)
                    .map_err(|e| e.to_string())
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    /// Parses one flat JSON object (string/number/null values only).
    fn object(&mut self) -> Result<BTreeMap<String, Json>, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    self.skip_ws();
                    if self.pos != self.bytes.len() {
                        return Err("trailing bytes after object".to_string());
                    }
                    return Ok(map);
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

/// Summary returned by a successful [`validate_ndjson`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NdjsonSummary {
    /// Number of span records.
    pub spans: usize,
    /// Number of root spans (no parent).
    pub roots: usize,
    /// Number of phase records.
    pub phases: usize,
    /// Number of counter records.
    pub counters: usize,
}

fn num(map: &BTreeMap<String, Json>, key: &str) -> Result<f64, String> {
    match map.get(key) {
        Some(Json::Num(n)) => Ok(*n),
        other => Err(format!("field '{key}' missing or not a number: {other:?}")),
    }
}

fn text<'m>(map: &'m BTreeMap<String, Json>, key: &str) -> Result<&'m str, String> {
    match map.get(key) {
        Some(Json::Str(s)) => Ok(s),
        other => Err(format!("field '{key}' missing or not a string: {other:?}")),
    }
}

/// Validates an NDJSON export: every line must parse as a flat JSON
/// object of a known record type, span ids must be unique, and every
/// `parent` reference must name a span on the same thread whose interval
/// fully contains the child's. Returns a record-count summary.
///
/// # Errors
/// A description of the first malformed line or nesting violation.
pub fn validate_ndjson(input: &str) -> Result<NdjsonSummary, String> {
    struct SpanRec {
        tid: u64,
        start: u64,
        end: u64,
    }
    let mut spans: BTreeMap<u64, SpanRec> = BTreeMap::new();
    let mut parents: Vec<(u64, u64)> = Vec::new(); // (child, parent)
    let mut summary = NdjsonSummary::default();
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let map = Parser::new(line)
            .object()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ty = text(&map, "type").map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let check = |r: Result<f64, String>| r.map_err(|e| format!("line {}: {e}", lineno + 1));
        match ty {
            "span" => {
                let id = check(num(&map, "id"))? as u64;
                let tid = check(num(&map, "tid"))? as u64;
                let start = check(num(&map, "start_ns"))? as u64;
                let dur = check(num(&map, "dur_ns"))? as u64;
                text(&map, "name").map_err(|e| format!("line {}: {e}", lineno + 1))?;
                text(&map, "cat").map_err(|e| format!("line {}: {e}", lineno + 1))?;
                if id == 0 {
                    return Err(format!("line {}: span id 0", lineno + 1));
                }
                match map.get("parent") {
                    Some(Json::Num(p)) => parents.push((id, *p as u64)),
                    Some(Json::Null) | None => summary.roots += 1,
                    other => {
                        return Err(format!("line {}: bad parent {other:?}", lineno + 1));
                    }
                }
                let rec = SpanRec {
                    tid,
                    start,
                    end: start + dur,
                };
                if spans.insert(id, rec).is_some() {
                    return Err(format!("line {}: duplicate span id {id}", lineno + 1));
                }
                summary.spans += 1;
            }
            "phase" => {
                text(&map, "name").map_err(|e| format!("line {}: {e}", lineno + 1))?;
                check(num(&map, "calls"))?;
                check(num(&map, "total_ns"))?;
                summary.phases += 1;
            }
            "counter" => {
                text(&map, "name").map_err(|e| format!("line {}: {e}", lineno + 1))?;
                check(num(&map, "value"))?;
                summary.counters += 1;
            }
            other => return Err(format!("line {}: unknown type '{other}'", lineno + 1)),
        }
    }
    for (child, parent) in parents {
        let p = spans
            .get(&parent)
            .ok_or_else(|| format!("span {child}: parent {parent} not in file"))?;
        let c = &spans[&child];
        if p.tid != c.tid {
            return Err(format!(
                "span {child}: parent {parent} is on thread {} but child on {}",
                p.tid, c.tid
            ));
        }
        if c.start < p.start || c.end > p.end {
            return Err(format!(
                "span {child} [{}, {}] not contained in parent {parent} [{}, {}]",
                c.start, c.end, p.start, p.end
            ));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    // The recorder is process-global; serialize the tests that toggle it.
    static LOCK: TestMutex<()> = TestMutex::new(());

    #[test]
    fn disabled_recorder_is_inert() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        reset();
        {
            let _s = span("nothing", "test");
            phase(Phase::Lu, start());
            counter("x", 3);
        }
        assert_eq!(render_ndjson(), "");
        for (_, calls, ns) in phase_totals() {
            assert_eq!((calls, ns), (0, 0));
        }
    }

    #[test]
    fn spans_nest_and_export_roundtrips() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        reset();
        {
            let _outer = span("outer", "test");
            {
                let _inner = span("in \"quoted\"\n", "test");
            }
            let t = start();
            phase(Phase::Lu, t);
            counter("widgets", 2);
            counter("widgets", 3);
        }
        // A span on another thread is a root of its own.
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = span("worker", "test");
            });
        });
        set_enabled(false);

        let ndjson = render_ndjson();
        let summary = validate_ndjson(&ndjson).expect("own export must validate");
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.roots, 2, "outer + worker are roots");
        assert_eq!(summary.phases, 1, "only touched phases are exported");
        assert_eq!(summary.counters, 1);
        assert!(ndjson.contains("\"value\":5"), "counters accumulate");

        let chrome = render_chrome();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("in \\\"quoted\\\"\\u000a"));

        let table = phase_table();
        assert!(table.contains("lu"), "{table}");
        reset();
    }

    #[test]
    fn phase_accumulates_calls_and_time() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        reset();
        for _ in 0..4 {
            let t = start();
            phase(Phase::Assembly, t);
        }
        set_enabled(false);
        let totals = phase_totals();
        let asm = totals.iter().find(|(n, _, _)| *n == "assembly").unwrap();
        assert_eq!(asm.1, 4);
        reset();
    }

    #[test]
    fn counters_snapshot_is_sorted_and_survives_disable() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        reset();
        counter("solver.nr_solves", 7);
        counter("store.hits", 3);
        counter("store.hits", 2);
        set_enabled(false);
        assert_eq!(
            counters_snapshot(),
            vec![
                ("solver.nr_solves".to_string(), 7),
                ("store.hits".to_string(), 5),
            ],
            "sorted by name, summed, readable after disable"
        );
        reset();
        assert!(counters_snapshot().is_empty());
    }

    #[test]
    fn validator_rejects_malformed_input() {
        assert!(validate_ndjson("not json").is_err());
        assert!(validate_ndjson("{\"type\":\"mystery\"}").is_err());
        // Span with a dangling parent reference.
        let dangling = "{\"type\":\"span\",\"id\":2,\"parent\":1,\"tid\":0,\
                        \"name\":\"x\",\"cat\":\"c\",\"start_ns\":0,\"dur_ns\":1}";
        assert!(validate_ndjson(dangling).unwrap_err().contains("parent 1"));
        // Child escaping its parent's interval.
        let escape = "{\"type\":\"span\",\"id\":2,\"parent\":1,\"tid\":0,\
                      \"name\":\"x\",\"cat\":\"c\",\"start_ns\":5,\"dur_ns\":100}\n\
                      {\"type\":\"span\",\"id\":1,\"tid\":0,\
                      \"name\":\"p\",\"cat\":\"c\",\"start_ns\":0,\"dur_ns\":10}";
        assert!(validate_ndjson(escape)
            .unwrap_err()
            .contains("not contained"));
        // Duplicate ids.
        let dup = "{\"type\":\"span\",\"id\":1,\"tid\":0,\"name\":\"a\",\
                   \"cat\":\"c\",\"start_ns\":0,\"dur_ns\":1}\n\
                   {\"type\":\"span\",\"id\":1,\"tid\":0,\"name\":\"b\",\
                   \"cat\":\"c\",\"start_ns\":0,\"dur_ns\":1}";
        assert!(validate_ndjson(dup).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn validator_accepts_empty_and_blank_lines() {
        assert_eq!(validate_ndjson("").unwrap(), NdjsonSummary::default());
        assert_eq!(validate_ndjson("\n\n").unwrap(), NdjsonSummary::default());
    }
}
