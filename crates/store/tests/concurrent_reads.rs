//! Concurrent journal reads: a reader loading a journal (or segment)
//! prefix while a writer appends and seals must always observe a valid
//! contiguous prefix — never a torn record, never an error.
//!
//! Two angles:
//!
//! * a **deterministic interleave** that appends each record in two raw
//!   byte halves and snapshots between the halves, proving the parser
//!   treats a half-written line as end-of-prefix;
//! * a **threaded race** where a real [`JournalWriter`] appends flushed
//!   records while a reader polls [`load_journal`] and
//!   [`journal_progress`] as fast as it can, asserting every observed
//!   prefix is monotonic and payload-exact.

use dotm_core::{ClassOutcome, CurrentFlags, DetectionSet, VoltageSignature};
use dotm_defects::FaultMechanism;
use dotm_faults::Severity;
use dotm_sim::SimStats;
use dotm_store::{journal_progress, load_journal, JournalHeader, JournalWriter};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dotm-concurrent-reads-{}-{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

fn outcome(i: usize) -> ClassOutcome {
    ClassOutcome {
        key: format!("class-{i}"),
        mechanism: FaultMechanism::Open,
        count: i + 1,
        severity: Severity::Catastrophic,
        shared: false,
        voltage: VoltageSignature::OutputStuckAt,
        currents: CurrentFlags::default(),
        detection: DetectionSet {
            missing_code: true,
            currents: CurrentFlags::default(),
        },
        flagged: vec![i],
        sim_failed: false,
        inject_failed: false,
        rung: Some(0),
        inject_errors: 0,
        excluded: false,
        solver: SimStats {
            nr_solves: i as u64,
            ..SimStats::default()
        },
    }
}

fn header(classes: usize) -> JournalHeader {
    JournalHeader {
        context: 0xcafe_f00d,
        macro_name: "comparator".into(),
        classes,
    }
}

/// Asserts one observed resume state is a valid prefix: contiguous
/// `Some` slots from class 0, each holding the exact payload the writer
/// recorded for that class.
fn assert_valid_prefix(path: &Path, expect: &JournalHeader) -> usize {
    let state = load_journal(path, expect);
    assert!(
        !state.context_mismatch,
        "a mid-write read must never misread the header as stale"
    );
    let mut prefix = 0;
    let mut in_prefix = true;
    for (i, slot) in state.completed.iter().enumerate() {
        match slot {
            Some(outcomes) if in_prefix => {
                assert_eq!(outcomes.len(), 1, "class {i} outcome count");
                assert_eq!(outcomes[0].count, i + 1, "class {i} payload");
                assert_eq!(outcomes[0].solver.nr_solves, i as u64, "class {i} stats");
                prefix += 1;
            }
            None => in_prefix = false,
            Some(_) => panic!("class {i} present after a gap — not a contiguous prefix"),
        }
    }
    let progress = journal_progress(path).expect("header written before any read");
    assert_eq!(progress.done, prefix, "snapshot and resume prefix agree");
    prefix
}

/// Deterministic torn-write interleave: every class record is appended
/// as two raw halves with reads between them. A reader must count the
/// record only after its final byte (including the newline) lands.
#[test]
fn half_written_records_never_enter_the_prefix() {
    let dir = tmpdir("interleave");
    let path = dir.join("comparator.jnl");
    let classes = 6;
    let expect = header(classes);

    // Render the canonical journal once, then replay its bytes by hand.
    let canonical = dir.join("canonical.jnl");
    let mut w = JournalWriter::create(&canonical, &expect).expect("create");
    for i in 0..classes {
        w.record_class(i, &[outcome(i)]).expect("record");
    }
    w.finish(0xabcd).expect("finish");
    let text = fs::read_to_string(&canonical).expect("read canonical");
    let lines: Vec<&str> = text.lines().collect();

    // Header first; before it lands the file is not a journal at all.
    let mut out = fs::File::create(&path).expect("create live file");
    assert_eq!(journal_progress(&path), None, "empty file has no header");
    writeln!(out, "{}", lines[0]).expect("header");
    out.flush().expect("flush");
    assert_eq!(assert_valid_prefix(&path, &expect), 0);

    for (i, line) in lines[1..=classes].iter().enumerate() {
        let (a, b) = line.split_at(line.len() / 2);
        out.write_all(a.as_bytes()).expect("first half");
        out.flush().expect("flush");
        assert_eq!(
            assert_valid_prefix(&path, &expect),
            i,
            "half-written record {i} must not count"
        );
        out.write_all(b.as_bytes()).expect("second half");
        out.flush().expect("flush");
        // Still torn: the newline has not landed, and the next read may
        // see the line glued to whatever follows. Without a trailing
        // newline the last line parses whole, which is also valid — the
        // record IS complete byte-wise. Accept i or i+1 here.
        let seen = assert_valid_prefix(&path, &expect);
        assert!(
            seen == i || seen == i + 1,
            "record {i}: prefix {seen} out of range"
        );
        out.write_all(b"\n").expect("newline");
        out.flush().expect("flush");
        assert_eq!(assert_valid_prefix(&path, &expect), i + 1);
    }

    // Seal in two halves too: the prefix stays complete-but-unsealed
    // until the fingerprint line lands.
    let seal = lines[classes + 1];
    let (a, b) = seal.split_at(seal.len() / 2);
    out.write_all(a.as_bytes()).expect("seal half");
    out.flush().expect("flush");
    let state = load_journal(&path, &expect);
    assert_eq!(state.prefix_len(), classes);
    assert_eq!(state.fingerprint, None, "torn seal carries no fingerprint");
    out.write_all(b.as_bytes()).expect("seal rest");
    out.write_all(b"\n").expect("newline");
    out.flush().expect("flush");
    let state = load_journal(&path, &expect);
    assert_eq!(state.fingerprint, Some(0xabcd));
    assert!(journal_progress(&path).expect("snapshot").sealed);

    let _ = fs::remove_dir_all(&dir);
}

/// Threaded race: a real writer appends flushed records while a reader
/// polls as fast as it can. Every observed prefix must be valid and the
/// sequence of observed lengths monotonic.
#[test]
fn polling_reader_races_a_live_writer() {
    let dir = tmpdir("race");
    let path = dir.join("comparator.jnl");
    let classes = 200;
    let expect = header(classes);

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer_path = path.clone();
        let writer_expect = expect.clone();
        let done_ref = &done;
        scope.spawn(move || {
            let mut w = JournalWriter::create(&writer_path, &writer_expect).expect("create");
            for i in 0..classes {
                w.record_class(i, &[outcome(i)]).expect("record");
            }
            w.finish(0x5ea1).expect("finish");
            done_ref.store(true, Ordering::Release);
        });

        let mut last = 0usize;
        let mut observations = 0u64;
        loop {
            let sealed = done.load(Ordering::Acquire);
            if path.exists() {
                let prefix = assert_valid_prefix(&path, &expect);
                assert!(
                    prefix >= last,
                    "prefix went backwards: {last} -> {prefix} (single writer, append-only)"
                );
                last = prefix;
                observations += 1;
            }
            if sealed {
                break;
            }
        }
        assert!(observations > 0, "the reader never observed the journal");
        let state = load_journal(&path, &expect);
        assert_eq!(state.prefix_len(), classes);
        assert_eq!(state.fingerprint, Some(0x5ea1));
    });

    let _ = fs::remove_dir_all(&dir);
}
