//! The content-addressed on-disk measurement store.

use crate::entry::{decode_measurement, encode_measurement};
use crate::fnv::{fnv64, mix};
use crate::wire::{Reader, Writer};
use dotm_core::{CachedMeasurement, MeasurementStore};
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Entry-file magic: 8 bytes of name + format version. Bumping the
/// version orphans (never misreads) every existing entry.
const MAGIC: &[u8; 8] = b"DOTMST01";

/// Shard count of the in-memory write-through overlay (same geometry as
/// the pipeline's `MeasureCache`).
const SHARDS: usize = 16;

/// Live counters of one store session. All counts are *events*, so they
/// depend on how many lookups the run performed — with the in-memory
/// overlay absorbing repeats, the interesting invariant is
/// `computed == 0` on a fully warm run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// `load` calls.
    pub loads: u64,
    /// Loads answered by the in-memory overlay.
    pub mem_hits: u64,
    /// Loads answered by an entry file on disk.
    pub disk_hits: u64,
    /// Loads answered by nobody — the pipeline computes the measurement.
    pub misses: u64,
    /// `store` calls (one per freshly *computed* measurement).
    pub computed: u64,
    /// Entry writes that failed at the filesystem level (absorbed: the
    /// campaign continues, the entry is simply not persisted).
    pub write_errors: u64,
}

impl StoreCounters {
    /// Loads answered without touching the solver.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// Hit rate in percent (100% when there were no loads).
    pub fn hit_pct(&self) -> f64 {
        if self.loads == 0 {
            return 100.0;
        }
        100.0 * self.hits() as f64 / self.loads as f64
    }
}

/// A persistent measurement store rooted at a directory.
///
/// Opened with a campaign *context* fingerprint (see
/// [`pipeline_context`](crate::pipeline_context)); every pipeline cache
/// key is folded with the context before touching memory or disk, so
/// runs under different configurations address disjoint key spaces
/// inside the same directory. Corrupt, truncated or foreign entry files
/// read as misses, never as errors.
///
/// Layout: `<dir>/meas/<first 2 hex digits>/<32 hex digits>.ent`.
pub struct DiskStore {
    meas_dir: PathBuf,
    context: u128,
    shards: Vec<Mutex<HashMap<u128, CachedMeasurement>>>,
    nonce: AtomicU64,
    loads: AtomicU64,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    computed: AtomicU64,
    write_errors: AtomicU64,
}

impl DiskStore {
    /// Opens (creating directories as needed) the store under `dir` for
    /// one campaign context.
    ///
    /// # Errors
    /// Only directory creation can fail; all later I/O degrades to
    /// misses or dropped writes.
    pub fn open(dir: impl AsRef<Path>, context: u128) -> io::Result<Self> {
        let meas_dir = dir.as_ref().join("meas");
        fs::create_dir_all(&meas_dir)?;
        Ok(DiskStore {
            meas_dir,
            context,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            nonce: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        })
    }

    /// The context fingerprint this store session was opened with.
    pub fn context(&self) -> u128 {
        self.context
    }

    /// A snapshot of the session counters.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            loads: self.loads.load(Ordering::Relaxed),
            mem_hits: self.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }

    fn shard(&self, mixed: u128) -> &Mutex<HashMap<u128, CachedMeasurement>> {
        &self.shards[(mixed as usize) % SHARDS]
    }

    fn entry_path(&self, mixed: u128) -> PathBuf {
        let hex = format!("{mixed:032x}");
        self.meas_dir.join(&hex[..2]).join(format!("{hex}.ent"))
    }

    fn read_entry(&self, mixed: u128) -> Option<CachedMeasurement> {
        let bytes = fs::read(self.entry_path(mixed)).ok()?;
        if bytes.len() < MAGIC.len() + 16 + 8 {
            return None;
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let checksum = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        if fnv64(body) != checksum {
            return None;
        }
        let mut r = Reader::new(body);
        if r.raw(MAGIC.len())? != MAGIC {
            return None;
        }
        // An entry renamed or hard-linked to the wrong address must not
        // answer for it.
        if r.u128()? != mixed {
            return None;
        }
        let payload = r.raw(body.len() - MAGIC.len() - 16)?;
        decode_measurement(payload)
    }

    fn write_entry(&self, mixed: u128, value: &CachedMeasurement) -> io::Result<()> {
        let mut w = Writer::new();
        w.raw(MAGIC);
        w.u128(mixed);
        w.raw(&encode_measurement(value));
        let mut bytes = w.into_bytes();
        let checksum = fnv64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());

        let path = self.entry_path(mixed);
        let dir = path.parent().expect("entry path has a parent");
        fs::create_dir_all(dir)?;
        // Unique temp name per (process, write): concurrent writers of
        // the same key each stage their own file and the renames settle
        // on one winner — both wrote identical bytes, so readers can
        // never observe a torn entry.
        let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(
            ".tmp-{:x}-{nonce:x}-{mixed:032x}",
            std::process::id()
        ));
        let write = (|| {
            use std::io::Write as _;
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            // Flush the entry to stable storage *before* the rename makes
            // it visible — otherwise a power loss can surface a renamed
            // but empty (or torn) entry. Readers would still degrade that
            // to a miss, but once several worker processes share a store
            // tree a phantom entry costs every later worker a recompute.
            f.sync_all()
        })();
        if let Err(e) = write {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        match fs::rename(&tmp, &path) {
            Ok(()) => {
                // Best-effort directory sync so the rename itself is
                // durable. Failure is absorbed: the degrade-to-miss read
                // path remains the last resort.
                if let Ok(d) = fs::File::open(dir) {
                    let _ = d.sync_all();
                }
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

impl MeasurementStore for DiskStore {
    fn load(&self, key: u128) -> Option<CachedMeasurement> {
        // Hit/miss latency goes to the trace side channel only; the
        // AtomicU64 counters below stay the deterministic accounting.
        let t_load = dotm_obs::start();
        let out = self.load_inner(key);
        dotm_obs::phase(dotm_obs::Phase::StoreLoad, t_load);
        out
    }

    fn store(&self, key: u128, value: &CachedMeasurement) {
        let t_write = dotm_obs::start();
        self.store_inner(key, value);
        dotm_obs::phase(dotm_obs::Phase::StoreWrite, t_write);
    }

    /// Uncounted membership probe: memory shard, then a bare
    /// file-existence check — no decode, no checksum, and none of the
    /// session counters the warm-resume gates read. A corrupt entry can
    /// answer `true` here and still degrade to a miss on the real
    /// [`MeasurementStore::load`]; the only consequence is one lane the
    /// lockstep pre-pass declined to prime, which is a lost optimisation,
    /// never a wrong result.
    fn contains(&self, key: u128) -> bool {
        let mixed = mix(self.context, key);
        if self
            .shard(mixed)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(&mixed)
        {
            return true;
        }
        self.entry_path(mixed).exists()
    }
}

impl DiskStore {
    fn load_inner(&self, key: u128) -> Option<CachedMeasurement> {
        self.loads.fetch_add(1, Ordering::Relaxed);
        let mixed = mix(self.context, key);
        if let Some(hit) = self
            .shard(mixed)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&mixed)
            .cloned()
        {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            return Some(hit);
        }
        if let Some(hit) = self.read_entry(mixed) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.shard(mixed)
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(mixed, hit.clone());
            return Some(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn store_inner(&self, key: u128, value: &CachedMeasurement) {
        self.computed.fetch_add(1, Ordering::Relaxed);
        let mixed = mix(self.context, key);
        self.shard(mixed)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(mixed, value.clone());
        if self.write_entry(mixed, value).is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Reads a directory's children **sorted by path**. `fs::read_dir`
/// yields entries in filesystem order — inode hash order on many
/// filesystems — so every fold over it in this crate goes through this
/// helper to keep accounting lines and merge output byte-identical
/// across filesystems and creation orders. A missing directory is an
/// empty listing.
fn read_dir_sorted(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths = Vec::new();
    match fs::read_dir(dir) {
        Ok(iter) => {
            for entry in iter {
                paths.push(entry?.path());
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    paths.sort();
    Ok(paths)
}

/// All `.ent` entry files under `<dir>/meas`, sorted by path.
fn entry_files_sorted(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries = Vec::new();
    for shard in read_dir_sorted(&dir.join("meas"))? {
        if !shard.is_dir() {
            continue;
        }
        for f in read_dir_sorted(&shard)? {
            if f.extension().is_some_and(|e| e == "ent") {
                entries.push(f);
            }
        }
    }
    Ok(entries)
}

/// What a store directory holds, computed by a deterministic sorted
/// walk: the accounting shape for "how full is this store tree".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreOccupancy {
    /// Number of entry files.
    pub entries: u64,
    /// Total entry bytes.
    pub bytes: u64,
    /// FNV-64 folded over the entry *file names* in walk order. Because
    /// the walk sorts, this digest is a pure function of the entry set —
    /// two trees holding the same keys digest identically regardless of
    /// filesystem or creation order, which is exactly what the sharded
    /// byte-identity gates compare.
    pub name_digest: u64,
}

/// Walks `<dir>/meas` and returns its [`StoreOccupancy`].
///
/// # Errors
/// Any filesystem error during the walk (a missing `meas/` is an empty
/// store, not an error).
pub fn occupancy(dir: impl AsRef<Path>) -> io::Result<StoreOccupancy> {
    let mut occ = StoreOccupancy::default();
    let mut names = Vec::new();
    for path in entry_files_sorted(dir.as_ref())? {
        occ.entries += 1;
        occ.bytes += fs::metadata(&path)?.len();
        if let Some(name) = path.file_name() {
            names.extend_from_slice(name.to_string_lossy().as_bytes());
            names.push(b'\n');
        }
    }
    occ.name_digest = fnv64(&names);
    Ok(occ)
}

/// Removes stale `.tmp-*` staging files left under `<dir>/meas` by
/// crashed or killed writers. Safe only while no writer is active in
/// the tree (e.g. from the shard coordinator between dispatch rounds) —
/// a live writer's staged file would be reaped mid-write. Returns the
/// number of files removed; individual unlink failures are absorbed.
///
/// # Errors
/// Any filesystem error during the directory walk.
pub fn reap_temp_files(dir: impl AsRef<Path>) -> io::Result<usize> {
    let mut reaped = 0;
    for shard in read_dir_sorted(&dir.as_ref().join("meas"))? {
        if !shard.is_dir() {
            continue;
        }
        for f in read_dir_sorted(&shard)? {
            let stale = f
                .file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with(".tmp-"));
            if stale && fs::remove_file(&f).is_ok() {
                reaped += 1;
            }
        }
    }
    Ok(reaped)
}

/// Deterministically flips one byte of one stored entry — the corruption
/// probe used by the verify gate and the recovery tests. Entries are
/// visited in lexicographic path order and the `index`-th one is
/// damaged in place. Returns the corrupted file's path, or `None` when
/// fewer than `index + 1` entries exist.
pub fn corrupt_one_entry(dir: impl AsRef<Path>, index: usize) -> io::Result<Option<PathBuf>> {
    let entries = entry_files_sorted(dir.as_ref())?;
    let Some(path) = entries.into_iter().nth(index) else {
        return Ok(None);
    };
    let mut bytes = fs::read(&path)?;
    // Flip a payload byte (past the magic) so the checksum fails.
    let at = MAGIC.len().min(bytes.len().saturating_sub(1));
    bytes[at] ^= 0x5a;
    fs::write(&path, &bytes)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::to_hex;
    use dotm_sim::{SimError, SimStats};
    use std::sync::atomic::AtomicUsize;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dotm-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    fn sample() -> CachedMeasurement {
        (
            Ok(vec![1.25, -3.5e-6]),
            SimStats {
                nr_solves: 2,
                nr_iterations: 17,
                ..SimStats::default()
            },
        )
    }

    #[test]
    fn store_then_load_across_sessions() {
        let dir = tmpdir("roundtrip");
        let value = sample();
        {
            let store = DiskStore::open(&dir, 42).expect("open");
            store.store(7, &value);
            // Same session: answered from the overlay.
            assert_eq!(store.load(7), Some(value.clone()));
            assert_eq!(store.counters().mem_hits, 1);
        }
        // New session (fresh overlay): answered from disk.
        let store = DiskStore::open(&dir, 42).expect("open");
        assert_eq!(store.load(7), Some(value));
        let c = store.counters();
        assert_eq!(c.disk_hits, 1);
        assert_eq!(c.misses, 0);
        assert_eq!(c.computed, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn context_partitions_the_key_space() {
        let dir = tmpdir("context");
        let store_a = DiskStore::open(&dir, 1).expect("open");
        store_a.store(7, &sample());
        let store_b = DiskStore::open(&dir, 2).expect("open");
        assert_eq!(store_b.load(7), None, "other context must miss");
        assert_eq!(store_b.counters().misses, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_persist_too() {
        let dir = tmpdir("errors");
        let value: CachedMeasurement = (
            Err(SimError::NoConvergence {
                analysis: "dc",
                time: None,
                iterations: 600,
            }),
            SimStats {
                dc_failures: 1,
                ..SimStats::default()
            },
        );
        DiskStore::open(&dir, 9).expect("open").store(1, &value);
        let store = DiskStore::open(&dir, 9).expect("open");
        assert_eq!(store.load(1), Some(value));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_entries_read_as_misses() {
        let dir = tmpdir("corrupt");
        {
            let store = DiskStore::open(&dir, 5).expect("open");
            store.store(11, &sample());
            store.store(12, &sample());
        }
        let hit = corrupt_one_entry(&dir, 0).expect("io").expect("an entry");
        let store = DiskStore::open(&dir, 5).expect("open");
        let hits = [store.load(11).is_some(), store.load(12).is_some()];
        assert_eq!(
            hits.iter().filter(|h| **h).count(),
            1,
            "exactly the corrupted entry must miss"
        );
        // Truncate the other entry to a torn write.
        let bytes = fs::read(&hit).expect("read");
        fs::write(&hit, &bytes[..bytes.len() / 2]).expect("write");
        let store = DiskStore::open(&dir, 5).expect("open");
        assert_eq!(store.counters().loads, 0);
        let _ = store.load(11);
        let _ = store.load(12);
        assert_eq!(store.counters().hits(), 1);
        // Empty file, too.
        fs::write(&hit, b"").expect("write");
        let store = DiskStore::open(&dir, 5).expect("open");
        let _ = store.load(11);
        let _ = store.load(12);
        assert_eq!(store.counters().hits(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_addressed_under_wrong_key_misses() {
        let dir = tmpdir("renamed");
        let store = DiskStore::open(&dir, 5).expect("open");
        store.store(11, &sample());
        let from = store.entry_path(mix(5, 11));
        let to = store.entry_path(mix(5, 99));
        fs::create_dir_all(to.parent().expect("parent")).expect("mkdir");
        fs::rename(&from, &to).expect("rename");
        let fresh = DiskStore::open(&dir, 5).expect("open");
        assert_eq!(fresh.load(99), None, "key inside the entry disagrees");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_writers_settle_on_identical_bytes() {
        let dir = tmpdir("race");
        let store = DiskStore::open(&dir, 3).expect("open");
        let value = sample();
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for k in 0..32u128 {
                        store.store(k, &value);
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 8);
        assert_eq!(store.counters().write_errors, 0);
        // Every key present, no stray temp files.
        let fresh = DiskStore::open(&dir, 3).expect("open");
        for k in 0..32u128 {
            assert_eq!(fresh.load(k), Some(value.clone()), "key {k}");
        }
        let mut stray = Vec::new();
        for shard in fs::read_dir(dir.join("meas")).expect("read_dir") {
            let shard = shard.expect("entry").path();
            if !shard.is_dir() {
                continue;
            }
            for f in fs::read_dir(&shard).expect("read_dir") {
                let f = f.expect("entry").path();
                if f.extension().map_or(true, |e| e != "ent") {
                    stray.push(f);
                }
            }
        }
        assert!(stray.is_empty(), "leftover temp files: {stray:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn occupancy_ignores_creation_order() {
        // Same key set written in different (shuffled) orders must fold
        // to the same occupancy — the sorted walk, not filesystem
        // enumeration order, defines the accounting bytes.
        let keys: Vec<u128> = (0..24).collect();
        let mut shuffled = keys.clone();
        // Deterministic shuffle: reverse halves and interleave.
        shuffled.reverse();
        shuffled.rotate_left(7);
        let dirs = [tmpdir("occ-a"), tmpdir("occ-b")];
        for (dir, order) in dirs.iter().zip([&keys, &shuffled]) {
            let store = DiskStore::open(dir, 42).expect("open");
            for k in order {
                store.store(*k, &sample());
            }
        }
        let occ_a = occupancy(&dirs[0]).expect("occupancy a");
        let occ_b = occupancy(&dirs[1]).expect("occupancy b");
        assert_eq!(occ_a, occ_b, "creation order must not leak into accounting");
        assert_eq!(occ_a.entries, 24);
        assert!(occ_a.bytes > 0);
        for dir in &dirs {
            let _ = fs::remove_dir_all(dir);
        }
    }

    #[test]
    fn reap_removes_stale_temp_files_only() {
        let dir = tmpdir("reap");
        let store = DiskStore::open(&dir, 7).expect("open");
        store.store(1, &sample());
        // Fake a dead writer's staged file next to the live entry.
        let shard_dir = store.entry_path(mix(7, 1));
        let shard_dir = shard_dir.parent().expect("parent");
        let stale = shard_dir.join(".tmp-dead-0-cafe");
        fs::write(&stale, b"partial").expect("write stale");
        assert_eq!(reap_temp_files(&dir).expect("reap"), 1);
        assert!(!stale.exists(), "stale temp file must be gone");
        let fresh = DiskStore::open(&dir, 7).expect("open");
        assert!(fresh.load(1).is_some(), "live entry must survive the reap");
        assert_eq!(reap_temp_files(&dir).expect("reap"), 0, "idempotent");
        // Missing store tree: empty, not an error.
        assert_eq!(
            reap_temp_files(dir.join("nonexistent")).expect("reap"),
            0,
            "missing tree reaps nothing"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hex_store_paths_are_stable() {
        let dir = tmpdir("paths");
        let store = DiskStore::open(&dir, 0).expect("open");
        let mixed = mix(0, 1);
        let path = store.entry_path(mixed);
        let hex = format!("{mixed:032x}");
        assert!(path.ends_with(Path::new("meas").join(&hex[..2]).join(format!("{hex}.ent"))));
        assert_eq!(to_hex(&[0xab]), "ab");
        let _ = fs::remove_dir_all(&dir);
    }
}
