//! The campaign context fingerprint: everything a stored measurement or
//! a journaled class outcome depends on *besides* the injected netlist
//! content and the escalation rung (which are in the per-entry key).

use crate::fnv::Fnv128;
use dotm_core::{MacroHarness, MeasureKind, PipelineConfig, SimFailurePolicy};
use dotm_sim::Integration;

/// Bumped whenever any persisted encoding changes shape, so old stores
/// and journals age out as misses instead of decoding wrongly.
pub const FORMAT_VERSION: u64 = 3;

/// Computes the context fingerprint of one `(harness, config)` pair.
///
/// Folded in: the store format version; the harness identity (name,
/// instance count, solver options, measurement plan, shared nets,
/// current floors); the defect population inputs (sprinkle size, seed,
/// defect statistics); the process-variation sigmas; the good-space
/// Monte-Carlo sizes and seed; the escalation ladder; the sim-failure
/// policy; and the solver-effort knobs (`warm_start`, `measure_cache`,
/// `factor_reuse`, `rank_update`, `batch_assembly`, `tran_step_carry`)
/// whose telemetry — or, for the round-off-changing ones, whose solution
/// bits — lands in persisted solver-stats deltas and measurements.
///
/// Deliberately *excluded*:
///
/// - the executor configuration — thread count must never change a key
///   (the whole point of the determinism contract);
/// - `max_classes` — truncation selects *which* classes run, it never
///   changes any class's evaluation, so smoke runs share entries with
///   full runs (the journal guards its own class count separately);
/// - `variant_lockstep` — the lockstep pre-pass is bitwise- *and*
///   stats-invisible (a primed lane adopts the exact system and factors
///   the scalar walk would have computed, and adoption bumps no
///   [`dotm_sim::SimStats`] counter), so both settings produce identical
///   persisted entries and must share them.
pub fn pipeline_context(harness: &dyn MacroHarness, cfg: &PipelineConfig) -> u128 {
    let mut h = Fnv128::new();
    h.u64(FORMAT_VERSION);

    // Harness identity.
    h.str(harness.name());
    h.u64(harness.instance_count() as u64);
    let opts = harness.sim_options();
    h.f64(opts.abstol_v)
        .f64(opts.abstol_i)
        .f64(opts.reltol)
        .u64(opts.max_iter as u64)
        .f64(opts.gmin)
        .f64(opts.v_step_limit)
        .u64(match opts.integration {
            Integration::BackwardEuler => 0,
            Integration::Trapezoidal => 1,
        })
        .u64(opts.max_step_halvings as u64);
    let plan = harness.plan();
    h.u64(plan.len() as u64);
    for label in &plan.labels {
        h.u64(match label.kind {
            MeasureKind::Decision => 0,
            MeasureKind::Current(k) => 1 + k as u64,
            MeasureKind::Level => 10,
        });
        h.str(&label.name);
    }
    let shared = harness.shared_nets();
    h.u64(shared.len() as u64);
    for net in shared {
        h.str(net);
    }
    for kind in dotm_core::CurrentKind::ALL {
        h.f64(harness.current_floor(kind));
    }

    // Fault population inputs. `Debug` for f64 prints the shortest
    // round-trip representation, so hashing the Debug string of the
    // statistics struct is exact.
    h.u64(cfg.defects as u64);
    h.u64(cfg.seed);
    h.str(&format!("{:?}", cfg.stats));
    h.bool(cfg.non_catastrophic);

    // Good-space compilation inputs.
    let p = &cfg.process;
    h.f64(p.sigma_vt_common)
        .f64(p.sigma_kp_common)
        .f64(p.sigma_r_common)
        .f64(p.sigma_vdd)
        .f64(p.sigma_vt_mismatch)
        .f64(p.sigma_kp_mismatch)
        .f64(p.sigma_r_mismatch)
        .f64(p.temp_span_c);
    h.u64(cfg.goodspace.common_samples as u64);
    h.u64(cfg.goodspace.mismatch_samples as u64);
    h.u64(cfg.goodspace.seed);
    h.bool(cfg.goodspace.warm_start);

    // Evaluation policy and solver-effort knobs.
    h.u64(cfg.escalation.max_rung as u64);
    h.u64(match cfg.sim_failure_policy {
        SimFailurePolicy::AssumeDetected => 0,
        SimFailurePolicy::AssumeUndetected => 1,
        SimFailurePolicy::Exclude => 2,
    });
    h.bool(cfg.warm_start);
    h.bool(cfg.measure_cache);
    h.bool(cfg.factor_reuse);
    h.bool(cfg.rank_update);
    h.bool(cfg.batch_assembly);
    h.bool(cfg.tran_step_carry);

    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dotm_core::harnesses::ComparatorHarness;
    use dotm_core::{EscalationLadder, ExecConfig};

    fn base_cfg() -> PipelineConfig {
        PipelineConfig::default()
    }

    #[test]
    fn context_is_deterministic() {
        let h = ComparatorHarness::production();
        assert_eq!(
            pipeline_context(&h, &base_cfg()),
            pipeline_context(&h, &base_cfg())
        );
    }

    #[test]
    fn every_invalidation_input_moves_the_context() {
        let h = ComparatorHarness::production();
        let base = pipeline_context(&h, &base_cfg());

        let mut cfg = base_cfg();
        cfg.seed += 1;
        assert_ne!(pipeline_context(&h, &cfg), base, "sprinkle seed");

        let mut cfg = base_cfg();
        cfg.goodspace.seed ^= 1;
        assert_ne!(pipeline_context(&h, &cfg), base, "Monte-Carlo seed");

        let mut cfg = base_cfg();
        cfg.process.sigma_vt_common *= 2.0;
        assert_ne!(pipeline_context(&h, &cfg), base, "sigma bounds");

        let mut cfg = base_cfg();
        cfg.escalation = EscalationLadder { max_rung: 2 };
        assert_ne!(pipeline_context(&h, &cfg), base, "rung policy");

        let mut cfg = base_cfg();
        cfg.sim_failure_policy = SimFailurePolicy::Exclude;
        assert_ne!(pipeline_context(&h, &cfg), base, "failure policy");

        let mut cfg = base_cfg();
        cfg.warm_start = false;
        assert_ne!(pipeline_context(&h, &cfg), base, "warm start");

        let mut cfg = base_cfg();
        cfg.factor_reuse = false;
        assert_ne!(pipeline_context(&h, &cfg), base, "factor reuse");

        let mut cfg = base_cfg();
        cfg.rank_update = true;
        assert_ne!(pipeline_context(&h, &cfg), base, "rank update");

        let mut cfg = base_cfg();
        cfg.batch_assembly = false;
        assert_ne!(pipeline_context(&h, &cfg), base, "batch assembly");

        let mut cfg = base_cfg();
        cfg.tran_step_carry = true;
        assert_ne!(pipeline_context(&h, &cfg), base, "step carry");

        let mut cfg = base_cfg();
        cfg.defects += 1;
        assert_ne!(pipeline_context(&h, &cfg), base, "sprinkle size");
    }

    #[test]
    fn harness_identity_moves_the_context() {
        let cfg = base_cfg();
        assert_ne!(
            pipeline_context(&ComparatorHarness::production(), &cfg),
            pipeline_context(&ComparatorHarness::dft(), &cfg)
        );
    }

    #[test]
    fn executor_and_truncation_do_not_move_the_context() {
        let h = ComparatorHarness::production();
        let base = pipeline_context(&h, &base_cfg());

        let mut cfg = base_cfg();
        cfg.exec = ExecConfig { threads: 7 };
        assert_eq!(pipeline_context(&h, &cfg), base, "thread count");

        let mut cfg = base_cfg();
        cfg.max_classes = Some(3);
        assert_eq!(pipeline_context(&h, &cfg), base, "class truncation");

        let mut cfg = base_cfg();
        cfg.variant_lockstep = false;
        assert_eq!(pipeline_context(&h, &cfg), base, "variant lockstep");
    }
}
