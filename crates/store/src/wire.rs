//! A minimal length-checked binary wire format (little-endian, no
//! external crates). Every decode returns `Option`: any truncation,
//! overflow or bad tag is a `None`, which the store layers above treat
//! as a cache miss — never as an error.

/// Append-only byte buffer writer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Raw bytes, unframed (fixed-size fields like magic numbers).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// One little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// One little-endian u128.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// One f64 by exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// A length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.raw(s.as_bytes());
    }
}

/// Cursor over a byte slice; every accessor checks bounds.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// `true` when every byte has been consumed — decoders require this
    /// so trailing garbage invalidates an entry instead of hiding in it.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Takes `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    /// One byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.raw(1).map(|b| b[0])
    }

    /// One little-endian u64.
    pub fn u64(&mut self) -> Option<u64> {
        self.raw(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// One little-endian u128.
    pub fn u128(&mut self) -> Option<u128> {
        self.raw(16)
            .map(|b| u128::from_le_bytes(b.try_into().expect("16 bytes")))
    }

    /// One f64 by exact bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// A length-prefixed UTF-8 string. The length is bounded by the
    /// remaining buffer, so a corrupt prefix cannot ask for gigabytes.
    pub fn str(&mut self) -> Option<String> {
        let n = self.u64()?;
        let n = usize::try_from(n).ok()?;
        let bytes = self.raw(n)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// A length prefix for a sequence of items at least `min_item` bytes
    /// each — bounded up front so corrupt counts fail fast instead of
    /// attempting huge allocations.
    pub fn seq_len(&mut self, min_item: usize) -> Option<usize> {
        let n = usize::try_from(self.u64()?).ok()?;
        let remaining = self.buf.len() - self.pos;
        if n.checked_mul(min_item.max(1))? > remaining {
            return None;
        }
        Some(n)
    }
}

/// Lowercase hex encoding.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    s
}

/// Strict lowercase/uppercase hex decoding; `None` on odd length or a
/// non-hex character.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    let digits: Vec<u32> = s.chars().map(|c| c.to_digit(16)).collect::<Option<_>>()?;
    Some(
        digits
            .chunks(2)
            .map(|p| ((p[0] << 4) | p[1]) as u8)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = Writer::new();
        w.u8(7);
        w.u64(u64::MAX - 3);
        w.u128(u128::MAX - 9);
        w.f64(-0.0);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u64(), Some(u64::MAX - 3));
        assert_eq!(r.u128(), Some(u128::MAX - 9));
        assert_eq!(r.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(r.str().as_deref(), Some("héllo"));
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_none_not_panic() {
        let mut w = Writer::new();
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert_eq!(r.u64(), None);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u128(), None, "asked for more than is there");
    }

    #[test]
    fn corrupt_string_length_is_bounded() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // an absurd length prefix
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.str(), None);
    }

    #[test]
    fn hex_roundtrip_and_rejection() {
        let b = vec![0x00, 0x7f, 0xff, 0x1a];
        assert_eq!(from_hex(&to_hex(&b)).as_deref(), Some(&b[..]));
        assert_eq!(from_hex("abc"), None, "odd length");
        assert_eq!(from_hex("zz"), None, "non-hex digit");
        assert_eq!(from_hex(""), Some(Vec::new()));
    }
}
