//! # dotm-store — persistent campaign store with checkpoint/resume
//!
//! The in-memory [`MeasureCache`](dotm_core::MeasureCache) memoizes
//! `(injected-netlist digest, escalation rung) → measurement` for the
//! lifetime of one run. This crate extends that memoization across runs:
//!
//! - [`DiskStore`] is a content-addressed on-disk measurement store
//!   implementing [`dotm_core::MeasurementStore`]. Keys are the
//!   pipeline's own cache keys folded with a campaign *context*
//!   fingerprint ([`pipeline_context`]), so any change to the netlist
//!   content, the escalation policy, the Monte-Carlo seeds or the sigma
//!   bounds lands in a disjoint key space — stale entries can never be
//!   replayed, they simply stop being found.
//! - [`JournalWriter`] / [`load_journal`] checkpoint per-macro progress
//!   as an append-only journal of completed fault classes, so a killed
//!   campaign resumes from the last completed class and finishes with a
//!   final report bit-identical to an uninterrupted run.
//! - Shard *segments* ([`create_segment`] / [`load_segment`] /
//!   [`merge_segments`]) split one macro's journal into per-worker
//!   slices for multi-process campaigns; a complete merge replays the
//!   single-process journal, report and accounting byte-for-byte.
//!
//! ## Crash safety
//!
//! Store entries are written to a temporary file and atomically renamed
//! into place; every entry carries a magic header, its own key and a
//! trailing FNV-64 checksum. A truncated, corrupt or concurrently
//! rewritten entry is indistinguishable from an absent one: it reads as
//! a *miss* (recompute), never as an error and never as a wrong value.
//! The journal is line-oriented with a per-record checksum; a torn tail
//! only shortens the resumable prefix.
//!
//! ## Determinism
//!
//! A stored measurement is the complete observable effect of the solve —
//! result plus solver-stats delta — and a pure function of its key, so
//! replaying an entry is indistinguishable, in every report byte, from
//! recomputing it. Store *contents* are likewise scheduling-free: each
//! entry file's bytes depend only on its key, so serial and
//! multi-threaded runs write byte-identical stores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod entry;
mod fnv;
mod journal;
mod segment;
mod store;
mod wire;

pub use context::pipeline_context;
pub use fnv::{fnv64, Fnv128};
pub use journal::{
    journal_progress, journal_progress_text, load_journal, JournalHeader, JournalProgress,
    JournalWriter, ResumeState,
};
pub use segment::{create_segment, load_segment, merge_segments, segment_path, MergeReport};
pub use store::{
    corrupt_one_entry, occupancy, reap_temp_files, DiskStore, StoreCounters, StoreOccupancy,
};
