//! Shard journal segments: per-worker slices of one macro's journal.
//!
//! A sharded campaign splits a macro's class population into contiguous
//! ranges (see [`ShardSpec`]) and hands each range to one worker
//! process. Each worker checkpoints exactly like a single-process run —
//! same record encoding, same torn-tail semantics — but into its own
//! *segment* file, so workers never contend on a shared journal:
//!
//! ```text
//! journal/comparator.shard-0-of-4.jnl
//! journal/comparator.shard-1-of-4.jnl
//! ...
//! ```
//!
//! A segment header is a journal header plus the shard coordinates:
//!
//! ```text
//! {"dotm_journal":1,"context":"<32 hex>","macro":"comparator","classes":417,"shard":1,"shards":4}
//! ```
//!
//! The extra `"shards"` field makes segment and whole-macro headers
//! mutually unparseable: [`crate::load_journal`] refuses a segment file
//! and [`load_segment`] refuses a whole-macro journal, so neither can
//! masquerade as the other. Class records cover `range.start..range.end`
//! in order; the seal's fingerprint is the *shard report* fingerprint
//! (the pipeline run restricted to the shard's classes).
//!
//! [`merge_segments`] folds all segments of one macro in shard order,
//! verifying every per-record checksum and every context header, and
//! reports exactly which shards are missing, short or stale — the
//! coordinator re-dispatches precisely those. A complete merge yields
//! the full completed-class vector, from which the merge step replays
//! the canonical single-process journal and report byte-for-byte.

use crate::journal::{json_field, parse_class, JournalHeader, JournalWriter, ResumeState};
use dotm_core::{ClassOutcome, ShardSpec};
use std::fs;
use std::path::{Path, PathBuf};

/// The segment file for `macro_name` under `journal_dir`:
/// `<macro>.shard-<i>-of-<N>.jnl`.
pub fn segment_path(journal_dir: &Path, macro_name: &str, shard: ShardSpec) -> PathBuf {
    journal_dir.join(format!(
        "{macro_name}.shard-{}-of-{}.jnl",
        shard.index, shard.count
    ))
}

fn segment_header_line(header: &JournalHeader, shard: ShardSpec) -> String {
    let base = header.to_line();
    let body = base.strip_suffix('}').expect("header line ends in '}'");
    format!(
        "{body},\"shard\":{},\"shards\":{}}}",
        shard.index, shard.count
    )
}

fn parse_segment_header(line: &str) -> Option<(JournalHeader, ShardSpec)> {
    if json_field(line, "dotm_journal")? != "1" {
        return None;
    }
    let index = json_field(line, "shard")?.parse().ok()?;
    let count = json_field(line, "shards")?.parse().ok()?;
    let spec = ShardSpec::new(index, count).ok()?;
    Some((
        JournalHeader {
            context: u128::from_str_radix(json_field(line, "context")?, 16).ok()?,
            macro_name: json_field(line, "macro")?.to_string(),
            classes: json_field(line, "classes")?.parse().ok()?,
        },
        spec,
    ))
}

/// Creates (truncating any previous file) one shard's segment and writes
/// its header. The returned writer accepts classes `range.start` through
/// `range.end - 1` in order and seals with the shard-report fingerprint.
/// An empty range (more shards than classes) seals immediately.
///
/// # Errors
/// Any filesystem error — segments carry the same checkpoint contract
/// as whole-macro journals.
pub fn create_segment(
    path: &Path,
    header: &JournalHeader,
    shard: ShardSpec,
) -> std::io::Result<JournalWriter> {
    let range = shard.range(header.classes);
    JournalWriter::create_with_header(
        path,
        &segment_header_line(header, shard),
        range.start,
        range.end,
    )
}

/// Loads one shard segment's resumable state, exactly like
/// [`crate::load_journal`] restricted to the shard's class range. The
/// `completed` vector is full-length (`expect.classes`), `Some` only for
/// the contiguous prefix of the shard range; `fingerprint` is the
/// shard-report fingerprint when sealed; `context_mismatch` is set when
/// the file holds a structurally valid segment for a *different*
/// context, macro, class count or shard geometry.
pub fn load_segment(path: &Path, expect: &JournalHeader, shard: ShardSpec) -> ResumeState {
    let range = shard.range(expect.classes);
    let mut state = ResumeState {
        completed: vec![None; expect.classes],
        fingerprint: None,
        context_mismatch: false,
    };
    let Ok(text) = fs::read_to_string(path) else {
        return state;
    };
    let mut lines = text.lines();
    match lines.next().and_then(parse_segment_header) {
        Some((h, s)) if h == *expect && s == shard => {}
        Some(_) => {
            state.context_mismatch = true;
            return state;
        }
        None => return state,
    }
    let mut next = range.start;
    for line in lines {
        if let Some((index, outcomes)) = parse_class(line) {
            if index != next || index >= range.end {
                break;
            }
            state.completed[index] = Some(outcomes);
            next += 1;
        } else if next == range.end {
            if let Some(fp) =
                json_field(line, "fingerprint").and_then(|f| u64::from_str_radix(f, 16).ok())
            {
                state.fingerprint = Some(fp);
            }
            break;
        } else {
            break;
        }
    }
    state
}

/// The outcome of folding every shard segment of one macro.
#[derive(Debug, Default)]
pub struct MergeReport {
    /// Completed outcomes indexed by class — fully populated exactly
    /// when [`MergeReport::is_complete`].
    pub completed: Vec<Option<Vec<ClassOutcome>>>,
    /// Per-shard sealed fingerprints (shard-report fingerprints), `None`
    /// for incomplete shards.
    pub shard_fingerprints: Vec<Option<u64>>,
    /// Shards whose segment is missing, short, unsealed or stale — the
    /// set the coordinator must (re-)dispatch.
    pub incomplete: Vec<usize>,
    /// The subset of `incomplete` whose segment file exists but carries
    /// a mismatching header (a knob changed since it was written).
    pub context_mismatches: Vec<usize>,
}

impl MergeReport {
    /// `true` when every shard contributed its full sealed range.
    pub fn is_complete(&self) -> bool {
        self.incomplete.is_empty()
    }
}

/// Folds the `count` shard segments of `expect`'s macro under
/// `journal_dir` in shard (= class) order, verifying every record
/// checksum and every context header along the way.
pub fn merge_segments(journal_dir: &Path, expect: &JournalHeader, count: usize) -> MergeReport {
    let mut report = MergeReport {
        completed: vec![None; expect.classes],
        ..MergeReport::default()
    };
    for index in 0..count {
        let shard = ShardSpec::new(index, count).expect("index < count");
        let range = shard.range(expect.classes);
        let state = load_segment(
            &segment_path(journal_dir, &expect.macro_name, shard),
            expect,
            shard,
        );
        let full = range.clone().all(|c| state.completed[c].is_some());
        if state.context_mismatch {
            report.context_mismatches.push(index);
        }
        if full && state.fingerprint.is_some() {
            for c in range {
                report.completed[c] = state.completed[c].clone();
            }
            report.shard_fingerprints.push(state.fingerprint);
        } else {
            report.incomplete.push(index);
            report.shard_fingerprints.push(None);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_journal;
    use dotm_core::{CurrentFlags, DetectionSet, VoltageSignature};
    use dotm_defects::FaultMechanism;
    use dotm_faults::Severity;
    use dotm_sim::SimStats;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dotm-segment-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmpdir");
        dir
    }

    fn outcome(i: usize) -> ClassOutcome {
        ClassOutcome {
            key: format!("class-{i}"),
            mechanism: FaultMechanism::Open,
            count: i + 1,
            severity: Severity::Catastrophic,
            shared: false,
            voltage: VoltageSignature::OutputStuckAt,
            currents: CurrentFlags::default(),
            detection: DetectionSet {
                missing_code: true,
                currents: CurrentFlags::default(),
            },
            flagged: vec![i],
            sim_failed: false,
            inject_failed: false,
            rung: Some(0),
            inject_errors: 0,
            excluded: false,
            solver: SimStats {
                nr_solves: i as u64,
                ..SimStats::default()
            },
        }
    }

    fn header(classes: usize) -> JournalHeader {
        JournalHeader {
            context: 0xfeed_beef,
            macro_name: "comparator".into(),
            classes,
        }
    }

    fn write_shard(dir: &Path, classes: usize, shard: ShardSpec, fp: u64) {
        let h = header(classes);
        let path = segment_path(dir, &h.macro_name, shard);
        let mut w = create_segment(&path, &h, shard).expect("create");
        for i in shard.range(classes) {
            w.record_class(i, &[outcome(i)]).expect("record");
        }
        w.finish(fp).expect("finish");
    }

    #[test]
    fn segments_tile_and_merge_completely() {
        let dir = tmpdir("tile");
        let classes = 7;
        for index in 0..3 {
            let shard = ShardSpec::new(index, 3).expect("shard");
            write_shard(&dir, classes, shard, 100 + index as u64);
        }
        let report = merge_segments(&dir, &header(classes), 3);
        assert!(report.is_complete(), "incomplete: {:?}", report.incomplete);
        assert!(report.context_mismatches.is_empty());
        assert_eq!(
            report.shard_fingerprints,
            vec![Some(100), Some(101), Some(102)]
        );
        for (i, c) in report.completed.iter().enumerate() {
            let got = c.as_ref().expect("class present");
            assert_eq!(got[0].count, i + 1, "class {i} payload");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_short_shards_are_reported() {
        let dir = tmpdir("missing");
        let classes = 8;
        // Shard 1 of 4 never runs; shard 2 is torn mid-range.
        for index in [0, 2, 3] {
            let shard = ShardSpec::new(index, 4).expect("shard");
            write_shard(&dir, classes, shard, index as u64);
        }
        let shard2 = ShardSpec::new(2, 4).expect("shard");
        let path2 = segment_path(&dir, "comparator", shard2);
        let text = fs::read_to_string(&path2).expect("read");
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop(); // seal
        lines.pop(); // last class
        fs::write(&path2, lines.join("\n") + "\n").expect("write");
        let report = merge_segments(&dir, &header(classes), 4);
        assert_eq!(report.incomplete, vec![1, 2]);
        assert!(!report.is_complete());
        assert!(report.context_mismatches.is_empty());
        // Complete shards still contributed their ranges.
        let shard0 = ShardSpec::new(0, 4).expect("shard");
        for c in shard0.range(classes) {
            assert!(report.completed[c].is_some(), "class {c}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_segment_headers_flag_a_context_mismatch() {
        let dir = tmpdir("stale");
        let shard = ShardSpec::new(0, 2).expect("shard");
        write_shard(&dir, 4, shard, 9);
        let stale = JournalHeader {
            context: 0xdead,
            ..header(4)
        };
        let state = load_segment(&segment_path(&dir, "comparator", shard), &stale, shard);
        assert!(state.context_mismatch);
        assert_eq!(state.prefix_len(), 0);
        let report = merge_segments(&dir, &stale, 2);
        assert_eq!(report.context_mismatches, vec![0]);
        assert_eq!(report.incomplete, vec![0, 1]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_shard_geometry_is_a_mismatch() {
        let dir = tmpdir("geometry");
        let shard = ShardSpec::new(0, 2).expect("shard");
        write_shard(&dir, 4, shard, 9);
        let path = segment_path(&dir, "comparator", shard);
        // Same file read back expecting 0/3 instead of 0/2.
        let other = ShardSpec::new(0, 3).expect("shard");
        let state = load_segment(&path, &header(4), other);
        assert!(state.context_mismatch, "geometry change must not resume");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_and_journal_headers_are_mutually_unparseable() {
        let dir = tmpdir("cross");
        let shard = ShardSpec::new(0, 1).expect("shard");
        write_shard(&dir, 3, shard, 9);
        let seg = segment_path(&dir, "comparator", shard);
        // A whole-journal load of a segment file: ignored, not resumed.
        let as_journal = load_journal(&seg, &header(3));
        assert_eq!(as_journal.prefix_len(), 0);
        assert!(
            !as_journal.context_mismatch,
            "a segment is not a journal at all, not a stale journal"
        );
        // A segment load of a whole-journal file: ignored too.
        let jnl = dir.join("comparator.jnl");
        let mut w = JournalWriter::create(&jnl, &header(3)).expect("create");
        for i in 0..3 {
            w.record_class(i, &[outcome(i)]).expect("record");
        }
        w.finish(5).expect("finish");
        let as_segment = load_segment(&jnl, &header(3), shard);
        assert_eq!(as_segment.prefix_len(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_shard_range_seals_immediately() {
        let dir = tmpdir("empty");
        // 5 shards over 3 classes: shards past the population get empty
        // ranges and must still produce a valid sealed segment.
        let classes = 3;
        for index in 0..5 {
            let shard = ShardSpec::new(index, 5).expect("shard");
            write_shard(&dir, classes, shard, index as u64);
        }
        let report = merge_segments(&dir, &header(classes), 5);
        assert!(report.is_complete(), "incomplete: {:?}", report.incomplete);
        assert_eq!(report.completed.iter().filter(|c| c.is_some()).count(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_segment_tail_resumes_the_prefix() {
        let dir = tmpdir("torn");
        let shard = ShardSpec::new(1, 2).expect("shard");
        write_shard(&dir, 8, shard, 3);
        let path = segment_path(&dir, "comparator", shard);
        let text = fs::read_to_string(&path).expect("read");
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop(); // seal
        let last = lines.pop().expect("class line");
        let torn = &last[..last.len() / 2];
        let mut short = lines.join("\n");
        short.push('\n');
        short.push_str(torn);
        fs::write(&path, short).expect("write");
        let state = load_segment(&path, &header(8), shard);
        let range = shard.range(8); // 4..8
        assert_eq!(state.prefix_len(), range.len() - 1, "torn last record");
        assert!(state.completed[range.start].is_some());
        assert!(state.completed[range.end - 1].is_none());
        assert_eq!(state.fingerprint, None);
        let _ = fs::remove_dir_all(&dir);
    }
}
