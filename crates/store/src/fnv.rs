//! FNV-1a hashing, 64- and 128-bit — the same family the rest of the
//! code base uses for digests and fingerprints (no external crates).

const OFFSET64: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME64: u64 = 0x0000_0100_0000_01b3;
const OFFSET128: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const PRIME128: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// FNV-1a 64 over a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = OFFSET64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME64);
    }
    h
}

/// Streaming FNV-1a 128 accumulator with length-prefixed field framing,
/// so adjacent variable-length fields cannot alias.
pub struct Fnv128 {
    h: u128,
}

impl Fnv128 {
    /// A fresh accumulator at the offset basis.
    pub fn new() -> Self {
        Fnv128 { h: OFFSET128 }
    }

    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= b as u128;
            self.h = self.h.wrapping_mul(PRIME128);
        }
    }

    /// Hashes one u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.eat(&v.to_le_bytes());
        self
    }

    /// Hashes one u128.
    pub fn u128(&mut self, v: u128) -> &mut Self {
        self.eat(&v.to_le_bytes());
        self
    }

    /// Hashes one f64 by exact bit pattern.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Hashes one bool.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u64(v as u64)
    }

    /// Hashes a string, length-prefixed.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u64(s.len() as u64);
        self.eat(s.as_bytes());
        self
    }

    /// The accumulated digest.
    pub fn finish(&self) -> u128 {
        self.h
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

/// Folds a campaign context into a pipeline cache key: both halves pass
/// through the full FNV-1a mixing, so contexts differing in a single bit
/// address disjoint key spaces.
pub fn mix(context: u128, key: u128) -> u128 {
    let mut h = Fnv128::new();
    h.u128(context).u128(key);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Classic FNV-1a reference values.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_framing_prevents_aliasing() {
        let mut a = Fnv128::new();
        a.str("ab").str("c");
        let mut b = Fnv128::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn mix_separates_contexts_and_keys() {
        assert_ne!(mix(1, 2), mix(2, 1));
        assert_ne!(mix(0, 5), mix(5, 0));
        assert_eq!(mix(7, 9), mix(7, 9));
    }
}
