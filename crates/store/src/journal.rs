//! The campaign journal: an append-only, line-oriented checkpoint of
//! per-macro progress.
//!
//! One journal file per macro, three record shapes (flat JSON, written
//! and parsed by hand — no serde):
//!
//! ```text
//! {"dotm_journal":1,"context":"<32 hex>","macro":"comparator","classes":417}
//! {"class":0,"crc":"<16 hex>","data":"<hex payload>"}
//! ...
//! {"done":true,"fingerprint":"<16 hex>"}
//! ```
//!
//! The header pins the campaign context fingerprint and the class count;
//! a journal whose header disagrees with the current configuration is
//! ignored wholesale (the campaign starts cold and overwrites it).
//! Class records carry the binary outcome payload hex-encoded with a
//! FNV-64 checksum; they are written strictly in class order, so the
//! resumable state is the longest contiguous prefix of valid records —
//! a torn or corrupt line only shortens it. The `done` record seals the
//! journal with the final report fingerprint.
//!
//! On resume the campaign rewrites the journal from scratch while the
//! pipeline replays the prefix verbatim; because the encoding is
//! canonical, a resumed journal is byte-identical to an uninterrupted
//! one.

use crate::entry::{decode_outcomes, encode_outcomes};
use crate::fnv::fnv64;
use crate::wire::{from_hex, to_hex};
use dotm_core::ClassOutcome;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

/// Identity of one macro's journal: the campaign context and the class
/// population it checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Campaign context fingerprint (see
    /// [`pipeline_context`](crate::pipeline_context)).
    pub context: u128,
    /// Macro name.
    pub macro_name: String,
    /// Number of classes the run will evaluate (after any truncation).
    pub classes: usize,
}

impl JournalHeader {
    pub(crate) fn to_line(&self) -> String {
        format!(
            "{{\"dotm_journal\":1,\"context\":\"{:032x}\",\"macro\":\"{}\",\"classes\":{}}}",
            self.context, self.macro_name, self.classes
        )
    }
}

/// What a journal on disk resumes: the contiguous prefix of completed
/// classes and, when sealed, the final report fingerprint.
#[derive(Debug, Default)]
pub struct ResumeState {
    /// Completed outcomes indexed by class, `Some` for the contiguous
    /// prefix — exactly the shape `PipelineHooks::completed` wants.
    pub completed: Vec<Option<Vec<ClassOutcome>>>,
    /// Final fingerprint, present only on a sealed (completed) journal.
    pub fingerprint: Option<u64>,
    /// `true` when the file held a structurally valid journal whose
    /// header disagrees with the expected one (different context, macro
    /// or class count). The prefix is still empty — the journal is
    /// ignored wholesale — but the caller can now tell "a knob changed
    /// since this journal was written" apart from "cold start, no
    /// journal", and account for it explicitly instead of silently
    /// re-evaluating everything.
    pub context_mismatch: bool,
}

impl ResumeState {
    /// Number of resumable classes.
    pub fn prefix_len(&self) -> usize {
        self.completed.iter().filter(|c| c.is_some()).count()
    }
}

/// Extracts the raw value of `"key":` from a flat one-line JSON object:
/// the token up to the closing quote (string values) or up to the next
/// `,` / `}` (numbers and booleans). Returns `None` when absent.
pub(crate) fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = &line[at..];
    if let Some(s) = rest.strip_prefix('"') {
        s.split('"').next()
    } else {
        rest.split([',', '}']).next().map(str::trim)
    }
}

pub(crate) fn parse_header(line: &str) -> Option<JournalHeader> {
    if json_field(line, "dotm_journal")? != "1" {
        return None;
    }
    // A shard segment header (see `segment`) carries the same fields
    // plus `"shard"`/`"shards"`; refuse to mistake one for a whole-macro
    // journal so a stray segment file never resumes as a full run.
    if json_field(line, "shards").is_some() {
        return None;
    }
    Some(JournalHeader {
        context: u128::from_str_radix(json_field(line, "context")?, 16).ok()?,
        macro_name: json_field(line, "macro")?.to_string(),
        classes: json_field(line, "classes")?.parse().ok()?,
    })
}

/// Parses one class record; `None` on any malformation.
pub(crate) fn parse_class(line: &str) -> Option<(usize, Vec<ClassOutcome>)> {
    let index: usize = json_field(line, "class")?.parse().ok()?;
    let crc = u64::from_str_radix(json_field(line, "crc")?, 16).ok()?;
    let payload = from_hex(json_field(line, "data")?)?;
    if fnv64(&payload) != crc {
        return None;
    }
    Some((index, decode_outcomes(&payload)?))
}

/// Validates one class record line without decoding its payload: the
/// index parses, the hex payload parses, and the FNV-64 checksum holds.
/// Used by the read-only progress snapshot, where the outcome bytes are
/// not needed — only the fact that the record is whole.
fn class_record_index(line: &str) -> Option<usize> {
    let index: usize = json_field(line, "class")?.parse().ok()?;
    let crc = u64::from_str_radix(json_field(line, "crc")?, 16).ok()?;
    let payload = from_hex(json_field(line, "data")?)?;
    if fnv64(&payload) != crc {
        return None;
    }
    Some(index)
}

/// A read-only snapshot of one journal or segment file's progress, taken
/// without knowing the expected campaign context.
///
/// This is the service surface's window into a *running* campaign: the
/// writer appends whole flushed lines, so a reader that stops at the
/// first record whose checksum does not hold always observes a valid
/// contiguous prefix — a torn tail shortens the snapshot, it never
/// corrupts it (the `concurrent_reads` test suite pins this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalProgress {
    /// Macro name from the header.
    pub macro_name: String,
    /// Total classes the finished file will hold (after truncation).
    pub classes: usize,
    /// `(index, count)` for a shard segment, `None` for a whole-macro
    /// journal.
    pub shard: Option<(usize, usize)>,
    /// Whole class records observed, in order, checksum-valid.
    pub done: usize,
    /// `true` once the seal record (with its fingerprint) is present
    /// after a complete record range.
    pub sealed: bool,
    /// The sealed report fingerprint, present only when [`sealed`].
    ///
    /// [`sealed`]: JournalProgress::sealed
    pub fingerprint: Option<u64>,
}

impl JournalProgress {
    /// First class index this file records: `0` for a journal, the shard
    /// range start for a segment.
    pub fn first_class(&self) -> usize {
        match self.shard {
            Some((index, count)) => index * self.classes / count,
            None => 0,
        }
    }

    /// One-past-the-last class index this file records.
    pub fn last_class(&self) -> usize {
        match self.shard {
            Some((index, count)) => (index + 1) * self.classes / count,
            None => self.classes,
        }
    }
}

/// Parses a progress snapshot out of journal/segment text. `None` when
/// the first line is not a structurally valid header of either kind.
pub fn journal_progress_text(text: &str) -> Option<JournalProgress> {
    let mut lines = text.lines();
    let head = lines.next()?;
    if json_field(head, "dotm_journal")? != "1" {
        return None;
    }
    let shard = match (json_field(head, "shard"), json_field(head, "shards")) {
        (Some(i), Some(n)) => {
            let index: usize = i.parse().ok()?;
            let count: usize = n.parse().ok()?;
            if count == 0 || index >= count {
                return None;
            }
            Some((index, count))
        }
        (None, None) => None,
        _ => return None,
    };
    let mut progress = JournalProgress {
        macro_name: json_field(head, "macro")?.to_string(),
        classes: json_field(head, "classes")?.parse().ok()?,
        shard,
        done: 0,
        sealed: false,
        fingerprint: None,
    };
    let (first, last) = (progress.first_class(), progress.last_class());
    let mut next = first;
    for line in lines {
        if let Some(index) = class_record_index(line) {
            if index != next || index >= last {
                break;
            }
            next += 1;
        } else if next == last {
            if let Some(fp) =
                json_field(line, "fingerprint").and_then(|f| u64::from_str_radix(f, 16).ok())
            {
                progress.sealed = true;
                progress.fingerprint = Some(fp);
            }
            break;
        } else {
            break;
        }
    }
    progress.done = next - first;
    Some(progress)
}

/// Reads a progress snapshot from a journal or segment file. `None` for
/// a missing, unreadable or headerless file. Safe to call while a
/// [`JournalWriter`] in another process appends to the same path: the
/// snapshot is the longest valid prefix at read time.
pub fn journal_progress(path: &Path) -> Option<JournalProgress> {
    journal_progress_text(&fs::read_to_string(path).ok()?)
}

/// Loads the resumable state of `path` for the given expected header.
///
/// A missing or unreadable file, a header mismatch (different context,
/// macro or class count) or a corrupt first line all yield an empty
/// state: the campaign starts this macro cold. Class records must
/// appear in strict class order; the first gap, duplicate or corrupt
/// record ends the prefix.
pub fn load_journal(path: &Path, expect: &JournalHeader) -> ResumeState {
    let mut state = ResumeState {
        completed: vec![None; expect.classes],
        fingerprint: None,
        context_mismatch: false,
    };
    let Ok(text) = fs::read_to_string(path) else {
        return state;
    };
    let mut lines = text.lines();
    match lines.next().and_then(parse_header) {
        Some(h) if h == *expect => {}
        Some(_) => {
            state.context_mismatch = true;
            return state;
        }
        None => return state,
    }
    let mut next = 0usize;
    for line in lines {
        if let Some((index, outcomes)) = parse_class(line) {
            if index != next || index >= expect.classes {
                break;
            }
            state.completed[index] = Some(outcomes);
            next += 1;
        } else if next == expect.classes {
            if let Some(fp) =
                json_field(line, "fingerprint").and_then(|f| u64::from_str_radix(f, 16).ok())
            {
                state.fingerprint = Some(fp);
            }
            break;
        } else {
            break;
        }
    }
    state
}

/// Streams one macro's journal to disk, one flushed line per record.
pub struct JournalWriter {
    out: BufWriter<File>,
    classes: usize,
    written: usize,
}

impl JournalWriter {
    /// Creates (truncating any previous file) the journal and writes its
    /// header line.
    ///
    /// # Errors
    /// Any filesystem error — the journal is load-bearing for the
    /// campaign's checkpoint contract, so unlike store writes these are
    /// not absorbed.
    pub fn create(path: &Path, header: &JournalHeader) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut out = BufWriter::new(File::create(path)?);
        writeln!(out, "{}", header.to_line())?;
        out.flush()?;
        Ok(JournalWriter {
            out,
            classes: header.classes,
            written: 0,
        })
    }

    /// Creates a writer with an arbitrary header line whose class records
    /// cover `start..end` — the shard segment shape (see `segment`). A
    /// whole-macro journal is the `0..classes` special case.
    pub(crate) fn create_with_header(
        path: &Path,
        header_line: &str,
        start: usize,
        end: usize,
    ) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut out = BufWriter::new(File::create(path)?);
        writeln!(out, "{header_line}")?;
        out.flush()?;
        Ok(JournalWriter {
            out,
            classes: end,
            written: start,
        })
    }

    /// Appends one completed class. Classes must arrive in class order —
    /// the pipeline's observer dispatch guarantees exactly that.
    ///
    /// # Errors
    /// Any filesystem error, or a class arriving out of order.
    pub fn record_class(&mut self, index: usize, outcomes: &[ClassOutcome]) -> std::io::Result<()> {
        if index != self.written {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("class {index} out of order (expected {})", self.written),
            ));
        }
        let t_journal = dotm_obs::start();
        let payload = encode_outcomes(outcomes);
        writeln!(
            self.out,
            "{{\"class\":{index},\"crc\":\"{:016x}\",\"data\":\"{}\"}}",
            fnv64(&payload),
            to_hex(&payload)
        )?;
        self.out.flush()?;
        dotm_obs::phase(dotm_obs::Phase::Journal, t_journal);
        self.written += 1;
        Ok(())
    }

    /// Seals the journal with the final report fingerprint.
    ///
    /// # Errors
    /// Any filesystem error, or sealing before every class is recorded.
    pub fn finish(mut self, fingerprint: u64) -> std::io::Result<()> {
        if self.written != self.classes {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("sealing after {} of {} classes", self.written, self.classes),
            ));
        }
        writeln!(
            self.out,
            "{{\"done\":true,\"fingerprint\":\"{fingerprint:016x}\"}}"
        )?;
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dotm_core::{CurrentFlags, DetectionSet, VoltageSignature};
    use dotm_defects::FaultMechanism;
    use dotm_faults::Severity;
    use dotm_sim::SimStats;
    use std::path::PathBuf;

    fn tmpfile(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dotm-journal-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir.join("macro.jnl")
    }

    fn outcome(i: usize) -> ClassOutcome {
        ClassOutcome {
            key: format!("class-{i}"),
            mechanism: FaultMechanism::Open,
            count: i + 1,
            severity: Severity::Catastrophic,
            shared: false,
            voltage: VoltageSignature::OutputStuckAt,
            currents: CurrentFlags::default(),
            detection: DetectionSet {
                missing_code: true,
                currents: CurrentFlags::default(),
            },
            flagged: vec![i],
            sim_failed: false,
            inject_failed: false,
            rung: Some(0),
            inject_errors: 0,
            excluded: false,
            solver: SimStats {
                nr_solves: i as u64,
                ..SimStats::default()
            },
        }
    }

    fn header(classes: usize) -> JournalHeader {
        JournalHeader {
            context: 0xfeed_beef,
            macro_name: "comparator".into(),
            classes,
        }
    }

    fn write_full(path: &Path, classes: usize, fp: u64) {
        let mut w = JournalWriter::create(path, &header(classes)).expect("create");
        for i in 0..classes {
            w.record_class(i, &[outcome(i)]).expect("record");
        }
        w.finish(fp).expect("finish");
    }

    #[test]
    fn full_journal_resumes_sealed() {
        let path = tmpfile("full");
        write_full(&path, 3, 0xabcd);
        let state = load_journal(&path, &header(3));
        assert_eq!(state.prefix_len(), 3);
        assert_eq!(state.fingerprint, Some(0xabcd));
        assert_eq!(state.completed[1].as_ref().expect("class 1")[0].count, 2);
        let _ = fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn header_mismatch_resumes_nothing() {
        let path = tmpfile("mismatch");
        write_full(&path, 3, 1);
        for expect in [
            JournalHeader {
                context: 999,
                ..header(3)
            },
            JournalHeader {
                macro_name: "ladder".into(),
                ..header(3)
            },
            header(4),
        ] {
            let state = load_journal(&path, &expect);
            assert_eq!(state.prefix_len(), 0, "{expect:?}");
            assert_eq!(state.fingerprint, None);
            assert!(state.context_mismatch, "{expect:?}");
        }
        let _ = fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn missing_file_resumes_nothing() {
        let state = load_journal(Path::new("/nonexistent/journal.jnl"), &header(2));
        assert_eq!(state.prefix_len(), 0);
        assert_eq!(state.completed.len(), 2);
        assert!(!state.context_mismatch, "cold start is not a mismatch");
    }

    #[test]
    fn torn_tail_shortens_the_prefix() {
        let path = tmpfile("torn");
        write_full(&path, 3, 7);
        let text = fs::read_to_string(&path).expect("read");
        let mut lines: Vec<&str> = text.lines().collect();
        // Drop the seal and tear the last class record in half.
        lines.pop();
        let last = lines.pop().expect("a class line");
        let torn = &last[..last.len() / 2];
        let mut short = lines.join("\n");
        short.push('\n');
        short.push_str(torn);
        fs::write(&path, short).expect("write");
        let state = load_journal(&path, &header(3));
        assert_eq!(state.prefix_len(), 2, "torn third record must not count");
        assert_eq!(state.fingerprint, None);
        let _ = fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn corrupt_middle_record_ends_the_prefix_there() {
        let path = tmpfile("middle");
        write_full(&path, 3, 7);
        let text = fs::read_to_string(&path).expect("read");
        let lines: Vec<String> = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 2 {
                    l.replace("\"data\":\"", "\"data\":\"00")
                } else {
                    l.to_string()
                }
            })
            .collect();
        fs::write(&path, lines.join("\n") + "\n").expect("write");
        let state = load_journal(&path, &header(3));
        assert_eq!(state.prefix_len(), 1, "classes after the bad one drop too");
        assert_eq!(
            state.fingerprint, None,
            "an unsealed prefix has no fingerprint"
        );
        let _ = fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn rewriting_yields_identical_bytes() {
        let a = tmpfile("rewrite-a");
        let b = tmpfile("rewrite-b");
        write_full(&a, 4, 0x1234_5678_9abc_def0);
        write_full(&b, 4, 0x1234_5678_9abc_def0);
        assert_eq!(
            fs::read(&a).expect("read a"),
            fs::read(&b).expect("read b"),
            "canonical encoding: same inputs, same bytes"
        );
        let _ = fs::remove_dir_all(a.parent().expect("parent"));
        let _ = fs::remove_dir_all(b.parent().expect("parent"));
    }

    #[test]
    fn out_of_order_and_early_seal_are_writer_errors() {
        let path = tmpfile("order");
        let mut w = JournalWriter::create(&path, &header(2)).expect("create");
        assert!(w.record_class(1, &[outcome(1)]).is_err());
        w.record_class(0, &[outcome(0)]).expect("in order");
        let w2 = JournalWriter::create(&path, &header(2)).expect("recreate");
        assert!(w2.finish(0).is_err(), "seal before classes recorded");
        let _ = fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn progress_snapshot_tracks_prefix_and_seal() {
        let path = tmpfile("progress");
        let mut w = JournalWriter::create(&path, &header(3)).expect("create");
        let p = journal_progress(&path).expect("header present");
        assert_eq!((p.done, p.classes, p.sealed), (0, 3, false));
        assert_eq!(p.shard, None);
        assert_eq!(p.macro_name, "comparator");
        w.record_class(0, &[outcome(0)]).expect("record");
        w.record_class(1, &[outcome(1)]).expect("record");
        assert_eq!(journal_progress(&path).expect("snapshot").done, 2);
        w.record_class(2, &[outcome(2)]).expect("record");
        w.finish(0xfeed).expect("finish");
        let p = journal_progress(&path).expect("snapshot");
        assert_eq!((p.done, p.sealed, p.fingerprint), (3, true, Some(0xfeed)));
        let _ = fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn progress_snapshot_survives_a_torn_tail() {
        let path = tmpfile("progress-torn");
        write_full(&path, 3, 7);
        let text = fs::read_to_string(&path).expect("read");
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop(); // seal
        let last = lines.pop().expect("class line");
        let mut short = lines.join("\n");
        short.push('\n');
        short.push_str(&last[..last.len() / 2]);
        fs::write(&path, short).expect("write");
        let p = journal_progress(&path).expect("snapshot");
        assert_eq!((p.done, p.sealed), (2, false));
        let _ = fs::remove_dir_all(path.parent().expect("parent"));
    }

    #[test]
    fn progress_snapshot_reads_segments_and_rejects_garbage() {
        assert_eq!(journal_progress_text("not a journal"), None);
        assert_eq!(journal_progress(Path::new("/nonexistent/x.jnl")), None);
        // A hand-built segment header: shard 1 of 2 over 8 classes
        // records classes 4..8.
        let seg = "{\"dotm_journal\":1,\"context\":\"00000000000000000000000000feedbee\",\
                   \"macro\":\"ladder\",\"classes\":8,\"shard\":1,\"shards\":2}";
        let p = journal_progress_text(seg).expect("segment header");
        assert_eq!(p.shard, Some((1, 2)));
        assert_eq!((p.first_class(), p.last_class()), (4, 8));
        assert_eq!((p.done, p.sealed), (0, false));
    }

    #[test]
    fn json_field_extracts_values() {
        let line = "{\"a\":1,\"b\":\"two\",\"c\":true}";
        assert_eq!(json_field(line, "a"), Some("1"));
        assert_eq!(json_field(line, "b"), Some("two"));
        assert_eq!(json_field(line, "c"), Some("true"));
        assert_eq!(json_field(line, "d"), None);
    }
}
