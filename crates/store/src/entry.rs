//! Binary codecs for the two persisted payloads: a cached measurement
//! (store entries) and a list of class outcomes (journal records).
//!
//! Encodings are canonical — one byte sequence per value — which is what
//! lets serial and multi-threaded runs write byte-identical stores and
//! journals. Decoding is total: any unknown tag, truncation or trailing
//! garbage yields `None` and the caller treats the record as absent.

use crate::wire::{Reader, Writer};
use dotm_core::{CachedMeasurement, ClassOutcome, CurrentFlags, DetectionSet, VoltageSignature};
use dotm_defects::FaultMechanism;
use dotm_faults::Severity;
use dotm_sim::{SimError, SimStats};

/// The `&'static str` analysis names a [`SimError`] can carry. An entry
/// naming an analysis outside this set decodes as corrupt (a miss) —
/// the strings must come from the binary, not the disk.
const ANALYSES: [&str; 3] = ["dc", "transient", "ac"];

fn encode_analysis(w: &mut Writer, analysis: &str) {
    let tag = ANALYSES.iter().position(|a| *a == analysis);
    // An unknown analysis name still encodes (as the reserved tag), so
    // encoding is total; such entries simply never decode.
    w.u8(tag.map_or(u8::MAX, |t| t as u8));
}

fn decode_analysis(r: &mut Reader) -> Option<&'static str> {
    ANALYSES.get(r.u8()? as usize).copied()
}

fn encode_sim_error(w: &mut Writer, e: &SimError) {
    match e {
        SimError::Singular { analysis } => {
            w.u8(0);
            encode_analysis(w, analysis);
        }
        SimError::NoConvergence {
            analysis,
            time,
            iterations,
        } => {
            w.u8(1);
            encode_analysis(w, analysis);
            match time {
                Some(t) => {
                    w.u8(1);
                    w.f64(*t);
                }
                None => w.u8(0),
            }
            w.u64(*iterations as u64);
        }
        SimError::InvalidRequest(s) => {
            w.u8(2);
            w.str(s);
        }
        SimError::BadSource(s) => {
            w.u8(3);
            w.str(s);
        }
    }
}

fn decode_sim_error(r: &mut Reader) -> Option<SimError> {
    match r.u8()? {
        0 => Some(SimError::Singular {
            analysis: decode_analysis(r)?,
        }),
        1 => {
            let analysis = decode_analysis(r)?;
            let time = match r.u8()? {
                0 => None,
                1 => Some(r.f64()?),
                _ => return None,
            };
            let iterations = usize::try_from(r.u64()?).ok()?;
            Some(SimError::NoConvergence {
                analysis,
                time,
                iterations,
            })
        }
        2 => Some(SimError::InvalidRequest(r.str()?)),
        3 => Some(SimError::BadSource(r.str()?)),
        _ => None,
    }
}

fn encode_stats(w: &mut Writer, s: &SimStats) {
    for word in s.to_words() {
        w.u64(word);
    }
}

fn decode_stats(r: &mut Reader) -> Option<SimStats> {
    let mut s = SimStats::default();
    let fields: [&mut u64; 15] = [
        &mut s.nr_solves,
        &mut s.nr_iterations,
        &mut s.converged_plain,
        &mut s.converged_gmin,
        &mut s.converged_source,
        &mut s.dc_failures,
        &mut s.singular_pivots,
        &mut s.maxiter_exhausted,
        &mut s.tran_steps,
        &mut s.rejected_steps,
        &mut s.step_halvings,
        &mut s.warm_hits,
        &mut s.warm_misses,
        &mut s.factor_reuse_hits,
        &mut s.factor_refactor_fallbacks,
    ];
    for f in fields {
        *f = r.u64()?;
    }
    Some(s)
}

/// Encodes one cached measurement: the `Result` and the solver-stats
/// delta that replaying it must merge.
pub fn encode_measurement(m: &CachedMeasurement) -> Vec<u8> {
    let mut w = Writer::new();
    match &m.0 {
        Ok(values) => {
            w.u8(0);
            w.u64(values.len() as u64);
            for v in values {
                w.f64(*v);
            }
        }
        Err(e) => {
            w.u8(1);
            encode_sim_error(&mut w, e);
        }
    }
    encode_stats(&mut w, &m.1);
    w.into_bytes()
}

/// Decodes one cached measurement; `None` on any corruption, including
/// trailing bytes.
pub fn decode_measurement(bytes: &[u8]) -> Option<CachedMeasurement> {
    let mut r = Reader::new(bytes);
    let result = match r.u8()? {
        0 => {
            let n = r.seq_len(8)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.f64()?);
            }
            Ok(values)
        }
        1 => Err(decode_sim_error(&mut r)?),
        _ => return None,
    };
    let stats = decode_stats(&mut r)?;
    if !r.is_empty() {
        return None;
    }
    Some((result, stats))
}

fn mechanism_tag(m: FaultMechanism) -> u8 {
    FaultMechanism::ALL
        .iter()
        .position(|x| *x == m)
        .expect("every mechanism is in ALL") as u8
}

fn voltage_tag(v: VoltageSignature) -> u8 {
    VoltageSignature::ALL
        .iter()
        .position(|x| *x == v)
        .expect("every signature is in ALL") as u8
}

fn encode_outcome(w: &mut Writer, o: &ClassOutcome) {
    w.str(&o.key);
    w.u8(mechanism_tag(o.mechanism));
    w.u64(o.count as u64);
    w.u8(match o.severity {
        Severity::Catastrophic => 0,
        Severity::NonCatastrophic => 1,
    });
    w.u8(o.shared as u8);
    w.u8(voltage_tag(o.voltage));
    w.u8(o.currents.ivdd as u8);
    w.u8(o.currents.iddq as u8);
    w.u8(o.currents.iinput as u8);
    w.u8(o.detection.missing_code as u8);
    w.u8(o.detection.currents.ivdd as u8);
    w.u8(o.detection.currents.iddq as u8);
    w.u8(o.detection.currents.iinput as u8);
    w.u64(o.flagged.len() as u64);
    for &i in &o.flagged {
        w.u64(i as u64);
    }
    w.u8(o.sim_failed as u8);
    w.u8(o.inject_failed as u8);
    w.u8(o.rung.unwrap_or(u8::MAX));
    w.u64(o.inject_errors as u64);
    w.u8(o.excluded as u8);
    encode_stats(w, &o.solver);
}

fn decode_bool(r: &mut Reader) -> Option<bool> {
    match r.u8()? {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

fn decode_outcome(r: &mut Reader) -> Option<ClassOutcome> {
    let key = r.str()?;
    let mechanism = *FaultMechanism::ALL.get(r.u8()? as usize)?;
    let count = usize::try_from(r.u64()?).ok()?;
    let severity = match r.u8()? {
        0 => Severity::Catastrophic,
        1 => Severity::NonCatastrophic,
        _ => return None,
    };
    let shared = decode_bool(r)?;
    let voltage = *VoltageSignature::ALL.get(r.u8()? as usize)?;
    let currents = CurrentFlags {
        ivdd: decode_bool(r)?,
        iddq: decode_bool(r)?,
        iinput: decode_bool(r)?,
    };
    let detection = DetectionSet {
        missing_code: decode_bool(r)?,
        currents: CurrentFlags {
            ivdd: decode_bool(r)?,
            iddq: decode_bool(r)?,
            iinput: decode_bool(r)?,
        },
    };
    let n_flagged = r.seq_len(8)?;
    let mut flagged = Vec::with_capacity(n_flagged);
    for _ in 0..n_flagged {
        flagged.push(usize::try_from(r.u64()?).ok()?);
    }
    let sim_failed = decode_bool(r)?;
    let inject_failed = decode_bool(r)?;
    let rung = match r.u8()? {
        u8::MAX => None,
        r => Some(r),
    };
    let inject_errors = usize::try_from(r.u64()?).ok()?;
    let excluded = decode_bool(r)?;
    let solver = decode_stats(r)?;
    Some(ClassOutcome {
        key,
        mechanism,
        count,
        severity,
        shared,
        voltage,
        currents,
        detection,
        flagged,
        sim_failed,
        inject_failed,
        rung,
        inject_errors,
        excluded,
        solver,
    })
}

/// Encodes the outcome list of one completed class (a journal record's
/// payload).
pub fn encode_outcomes(outcomes: &[ClassOutcome]) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(outcomes.len() as u64);
    for o in outcomes {
        encode_outcome(&mut w, o);
    }
    w.into_bytes()
}

/// Decodes one class's outcome list; `None` on any corruption.
pub fn decode_outcomes(bytes: &[u8]) -> Option<Vec<ClassOutcome>> {
    let mut r = Reader::new(bytes);
    let n = r.seq_len(1)?;
    let mut outcomes = Vec::with_capacity(n);
    for _ in 0..n {
        outcomes.push(decode_outcome(&mut r)?);
    }
    if !r.is_empty() {
        return None;
    }
    Some(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> SimStats {
        SimStats {
            nr_solves: 3,
            nr_iterations: 41,
            converged_plain: 2,
            dc_failures: 1,
            warm_hits: 2,
            warm_misses: 1,
            factor_reuse_hits: 5,
            factor_refactor_fallbacks: 1,
            ..SimStats::default()
        }
    }

    fn sample_outcome() -> ClassOutcome {
        ClassOutcome {
            key: "short:mid|vdd".into(),
            mechanism: FaultMechanism::Short,
            count: 17,
            severity: Severity::NonCatastrophic,
            shared: true,
            voltage: VoltageSignature::Offset,
            currents: CurrentFlags {
                ivdd: true,
                iddq: false,
                iinput: true,
            },
            detection: DetectionSet {
                missing_code: true,
                currents: CurrentFlags {
                    ivdd: true,
                    iddq: false,
                    iinput: true,
                },
            },
            flagged: vec![1, 4],
            sim_failed: false,
            inject_failed: false,
            rung: Some(2),
            inject_errors: 0,
            excluded: false,
            solver: sample_stats(),
        }
    }

    #[test]
    fn measurement_ok_roundtrips_bit_exactly() {
        let m: CachedMeasurement = (
            Ok(vec![2.5, -0.0, f64::MIN_POSITIVE, 1.0e300]),
            sample_stats(),
        );
        let bytes = encode_measurement(&m);
        let back = decode_measurement(&bytes).expect("decodes");
        let (Ok(orig), Ok(dec)) = (&m.0, &back.0) else {
            panic!("both must be Ok");
        };
        assert_eq!(orig.len(), dec.len());
        for (a, b) in orig.iter().zip(dec) {
            assert_eq!(a.to_bits(), b.to_bits(), "exact bit pattern");
        }
        assert_eq!(m.1, back.1);
    }

    #[test]
    fn measurement_errors_roundtrip() {
        for e in [
            SimError::Singular { analysis: "dc" },
            SimError::NoConvergence {
                analysis: "transient",
                time: Some(1.5e-9),
                iterations: 600,
            },
            SimError::NoConvergence {
                analysis: "ac",
                time: None,
                iterations: 150,
            },
            SimError::InvalidRequest("bad step".into()),
            SimError::BadSource("R1".into()),
        ] {
            let m: CachedMeasurement = (Err(e.clone()), SimStats::default());
            let back = decode_measurement(&encode_measurement(&m)).expect("decodes");
            assert_eq!(back.0, Err(e));
        }
    }

    #[test]
    fn unknown_analysis_name_decodes_as_corrupt() {
        let m: CachedMeasurement = (
            Err(SimError::Singular { analysis: "noise" }),
            SimStats::default(),
        );
        assert_eq!(decode_measurement(&encode_measurement(&m)), None);
    }

    #[test]
    fn flipping_any_byte_is_rejected_or_different() {
        let m: CachedMeasurement = (Ok(vec![1.0, 2.0]), sample_stats());
        let bytes = encode_measurement(&m);
        // Truncations are always rejected.
        for cut in 0..bytes.len() {
            assert_eq!(decode_measurement(&bytes[..cut]), None, "cut at {cut}");
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(decode_measurement(&padded), None);
    }

    #[test]
    fn outcomes_roundtrip() {
        let outcomes = vec![
            sample_outcome(),
            ClassOutcome {
                severity: Severity::Catastrophic,
                rung: None,
                sim_failed: true,
                excluded: true,
                flagged: Vec::new(),
                ..sample_outcome()
            },
        ];
        let bytes = encode_outcomes(&outcomes);
        let back = decode_outcomes(&bytes).expect("decodes");
        assert_eq!(back.len(), 2);
        for (a, b) in outcomes.iter().zip(&back) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.mechanism, b.mechanism);
            assert_eq!(a.count, b.count);
            assert_eq!(a.severity, b.severity);
            assert_eq!(a.shared, b.shared);
            assert_eq!(a.voltage, b.voltage);
            assert_eq!(a.currents, b.currents);
            assert_eq!(a.detection, b.detection);
            assert_eq!(a.flagged, b.flagged);
            assert_eq!(a.sim_failed, b.sim_failed);
            assert_eq!(a.inject_failed, b.inject_failed);
            assert_eq!(a.rung, b.rung);
            assert_eq!(a.inject_errors, b.inject_errors);
            assert_eq!(a.excluded, b.excluded);
            assert_eq!(a.solver, b.solver);
        }
        // Canonical: re-encoding the decode gives the same bytes.
        assert_eq!(encode_outcomes(&back), bytes);
    }

    #[test]
    fn outcome_truncations_are_rejected() {
        let bytes = encode_outcomes(&[sample_outcome()]);
        for cut in 0..bytes.len() {
            assert!(decode_outcomes(&bytes[..cut]).is_none(), "cut at {cut}");
        }
    }
}
