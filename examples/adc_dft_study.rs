//! A miniature DfT study on the comparator macro: run the full
//! defect-oriented test path on the production comparator and on the
//! DfT-hardened variant (redesigned flipflop + reordered bias trunks),
//! then compare coverage — the paper's Fig. 3 → Fig. 5 move, at example
//! scale.
//!
//! Run with: `cargo run --release --example adc_dft_study`
//! (a few minutes; set DOTM_EXAMPLE_DEFECTS to shrink the run).

use dotm::core::harnesses::ComparatorHarness;
use dotm::core::{
    check_trunk_order, detectability, run_macro_path, GoodSpaceConfig, MacroHarness, PipelineConfig,
};
use dotm::faults::Severity;

fn main() {
    let defects: usize = dotm::core::env::usize_knob("DOTM_EXAMPLE_DEFECTS", 8_000);
    let cfg = PipelineConfig {
        defects,
        seed: 1995,
        goodspace: GoodSpaceConfig {
            common_samples: 4,
            mismatch_samples: 3,
            seed: 7,
            ..GoodSpaceConfig::default()
        },
        non_catastrophic: false,
        ..PipelineConfig::default()
    };

    println!("defect-oriented test path, {defects} defects per variant");
    println!();
    for (label, harness) in [
        ("production", ComparatorHarness::production()),
        ("with DfT measures", ComparatorHarness::dft()),
    ] {
        let t0 = std::time::Instant::now();
        let report = run_macro_path(&harness, &cfg).expect("path runs");
        let d = detectability(&report, Severity::Catastrophic);
        println!(
            "{label:<18} {:>4} faults / {:>3} classes  ({:.0}s)",
            report.total_faults,
            report.class_count,
            t0.elapsed().as_secs_f64()
        );
        println!(
            "    missing-code {:5.1}%   current {:5.1}%   coverage {:5.1}%",
            d.missing_code_pct, d.current_pct, d.coverage_pct
        );
        let undetected: Vec<_> = report
            .outcomes_of(Severity::Catastrophic)
            .filter(|o| !o.detection.detected())
            .collect();
        if undetected.is_empty() {
            println!("    no undetected classes");
        } else {
            println!("    undetected classes:");
            for o in undetected {
                println!("      {:>4}x {}", o.count, o.key);
            }
        }
        println!();
    }
    println!("the DfT variant removes the similar-signal bias adjacency and the");
    println!("flipflop's sampling-phase current spread — coverage rises accordingly");
    println!();
    // The paper's §4 design rule, checked mechanically on both layouts.
    for (label, lcfg) in [
        ("production", dotm::adc::layouts::LayoutConfig::default()),
        (
            "with DfT",
            dotm::adc::layouts::LayoutConfig {
                dft_bias_order: true,
            },
        ),
    ] {
        let order = dotm::adc::layouts::comparator_trunk_order(lcfg);
        let nl = ComparatorHarness::production().testbench();
        let is_static = |net: &str| matches!(net, "vbn" | "vbnc" | "vbp" | "vaz" | "vref");
        match check_trunk_order(&nl, &order, &is_static) {
            Ok(advisories) if advisories.is_empty() => {
                println!("DfT advisor ({label}): no similar-signal adjacencies")
            }
            Ok(advisories) => {
                println!("DfT advisor ({label}):");
                for a in advisories {
                    println!("  - {a}");
                }
            }
            Err(e) => println!("DfT advisor ({label}): {e}"),
        }
    }
}
