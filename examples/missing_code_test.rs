//! The paper's missing-code production test on the behavioural Flash ADC:
//! a triangular ramp, 1000 samples at full conversion speed, and a check
//! that every output number occurs — run against a healthy converter and
//! several fault-signature scenarios.
//!
//! Run with: `cargo run --example missing_code_test`

use dotm::adc::behavior::{ComparatorBehavior, FlashAdc};
use dotm::adc::ladder::ideal_tap_voltage;
use dotm::core::TestTimeModel;

fn report(label: &str, adc: &FlashAdc) {
    let missing = adc.missing_codes(1000);
    match missing.len() {
        0 => println!("{label:<42} all 256 codes observed — PASS"),
        n if n <= 8 => println!("{label:<42} missing {n} codes {missing:?} — FAIL"),
        n => println!("{label:<42} missing {n} codes — FAIL"),
    }
}

fn main() {
    let timing = TestTimeModel::default();
    println!(
        "missing-code test: {} samples at full speed = {:.0} µs of tester time",
        timing.missing_code_samples,
        timing.missing_code_time() * 1e6
    );
    println!();

    report("fault-free converter", &FlashAdc::ideal());

    let mut adc = FlashAdc::ideal();
    adc.set_comparator(100, ComparatorBehavior::StuckHigh);
    report("comparator 100 stuck high", &adc);

    let mut adc = FlashAdc::ideal();
    adc.set_comparator(200, ComparatorBehavior::StuckLow);
    report("comparator 200 stuck low", &adc);

    let mut adc = FlashAdc::ideal();
    adc.set_comparator(128, ComparatorBehavior::Normal { offset: 0.025 });
    report("comparator 128 offset +25 mV (3 LSB)", &adc);

    let mut adc = FlashAdc::ideal();
    adc.set_comparator(128, ComparatorBehavior::Normal { offset: 0.003 });
    report("comparator 128 offset +3 mV (< 1 LSB)", &adc);

    let mut adc = FlashAdc::ideal();
    adc.set_comparator(60, ComparatorBehavior::Erratic { period: 3 });
    report("comparator 60 erratic (mixed signature)", &adc);

    let mut adc = FlashAdc::ideal();
    adc.set_reference(100, ideal_tap_voltage(108));
    report("ladder tap 100 shifted to tap 108", &adc);

    // Uniform offset on every stage — a faulty bias generator.
    let mut adc = FlashAdc::ideal();
    for k in 0..adc.stages() {
        adc.set_comparator(k, ComparatorBehavior::Normal { offset: 0.020 });
    }
    report("all comparators offset +20 mV (bias fault)", &adc);
}
