//! Renders every macro layout of the case-study ADC to SVG (written to
//! `target/layouts/`), with a sprinkle of fault-causing defects overlaid
//! on the comparator — the visual end of the defect-oriented flow.
//!
//! Run with: `cargo run --example render_layouts`

use dotm::adc::comparator::ComparatorConfig;
use dotm::adc::layouts::{
    bias_layout, clockgen_layout, comparator_layout, decoder_slice_layout, ladder_layout,
    LayoutConfig,
};
use dotm::defects::{DefectStatistics, Sprinkler};
use dotm::layout::{render_svg, Layout, Rect, RenderOptions};
use std::fs;
use std::path::Path;

fn write(dir: &Path, name: &str, lo: &Layout, opts: &RenderOptions) {
    let svg = render_svg(lo, opts);
    let path = dir.join(format!("{name}.svg"));
    fs::write(&path, &svg).expect("write svg");
    let bbox = lo.bbox().unwrap();
    println!(
        "{:<22} {:>5} shapes  {:>6.0} x {:>5.0} µm  -> {}",
        name,
        lo.shape_count(),
        bbox.width() as f64 / 1e3,
        bbox.height() as f64 / 1e3,
        path.display()
    );
}

fn main() {
    let dir = Path::new("target/layouts");
    fs::create_dir_all(dir).expect("create output dir");

    let comparator = comparator_layout(ComparatorConfig::default(), LayoutConfig::default());
    // Overlay the first few fault-causing defects of a sprinkle.
    let sprinkler = Sprinkler::new(&comparator, DefectStatistics::default());
    let report = sprinkler.sprinkle(30_000, 7);
    let defects: Vec<(Rect, String)> = report
        .faults
        .iter()
        .take(12)
        .map(|f| {
            (
                Rect::square(f.defect.x, f.defect.y, f.defect.size),
                format!("{}: {}", f.defect.kind, f.canonical_key()),
            )
        })
        .collect();
    println!(
        "overlaying {} fault-causing defects on the comparator:",
        defects.len()
    );
    for (_, label) in &defects {
        println!("  {label}");
    }
    println!();
    let opts = RenderOptions {
        defects,
        ..RenderOptions::default()
    };
    write(dir, "comparator", &comparator, &opts);

    let plain = RenderOptions::default();
    write(
        dir,
        "comparator_dft",
        &comparator_layout(
            ComparatorConfig { dft_flipflop: true },
            LayoutConfig {
                dft_bias_order: true,
            },
        ),
        &plain,
    );
    write(dir, "bias_gen", &bias_layout(), &plain);
    write(dir, "clock_gen", &clockgen_layout(), &plain);
    write(
        dir,
        "decoder_slice",
        &decoder_slice_layout(dotm::adc::decoder::SLICE_CODES),
        &plain,
    );
    write(dir, "ladder", &ladder_layout(), &plain);
}
