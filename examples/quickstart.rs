//! Quickstart: the defect-oriented test path on a two-wire toy cell.
//!
//! Builds a miniature layout (two long parallel metal wires driven by a
//! divider), sprinkles defects on it, collapses the resulting faults into
//! classes, injects the most frequent class into the netlist, and shows
//! how the supply current exposes it.
//!
//! Run with: `cargo run --example quickstart`

use dotm::defects::{sprinkle_collapsed, DefectStatistics, Sprinkler};
use dotm::faults::{Injector, Severity};
use dotm::layout::{Layer, Layout};
use dotm::netlist::{Netlist, Waveform};
use dotm::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A toy circuit: 5 V through two series resistors, with the middle
    //    net and the supply net routed as long parallel wires.
    let mut nl = Netlist::new("toy");
    let vdd = nl.node("vdd");
    let mid = nl.node("mid");
    nl.add_vsource("VDD", vdd, Netlist::GROUND, Waveform::dc(5.0))?;
    nl.add_resistor("R1", vdd, mid, 10e3)?;
    nl.add_resistor("R2", mid, Netlist::GROUND, 10e3)?;

    // 2. Its layout: two 100 µm metal-1 wires, 1.4 µm apart.
    let mut lo = Layout::new("toy");
    let gnd_net = lo.net("gnd");
    lo.set_substrate_net(gnd_net);
    let vdd_net = lo.net("vdd");
    let mid_net = lo.net("mid");
    lo.wire_h(vdd_net, Layer::Metal1, 0, 100_000, 0, 800);
    lo.wire_h(mid_net, Layer::Metal1, 0, 100_000, 1_400, 800);

    // 3. Sprinkle 100,000 spot defects and collapse the faults.
    let sprinkler = Sprinkler::new(&lo, DefectStatistics::default());
    let report = sprinkle_collapsed(&sprinkler, 100_000, 42);
    println!(
        "sprinkled {} defects -> {} faults in {} classes",
        report.defects,
        report.total_faults,
        report.class_count()
    );
    for class in report.classes.iter().take(3) {
        println!("  {:>5}x {}", class.count, class.key);
    }

    // 4. Inject the most frequent class (the vdd↔mid metal bridge) and
    //    measure the supply current before and after.
    let ivdd = |nl: &Netlist| -> f64 {
        let mut sim = Simulator::new(nl);
        let op = sim.dc_op().expect("dc converges");
        op.branch_current(nl.device_id("VDD").unwrap()).unwrap()
    };
    let nominal = ivdd(&nl);

    let injector = Injector::default();
    let top = &report.classes[0];
    let mut faulty = nl.clone();
    injector.inject(
        &mut faulty,
        &top.representative.effect,
        Severity::Catastrophic,
        0,
        "flt",
    )?;
    let with_fault = ivdd(&faulty);

    println!();
    println!("IVdd fault-free:   {:.3} mA", nominal.abs() * 1e3);
    println!("IVdd with bridge:  {:.3} mA", with_fault.abs() * 1e3);
    println!(
        "the {}x-weighted bridge raises the supply current {:.0}x — current-testable",
        top.count,
        with_fault.abs() / nominal.abs()
    );
    Ok(())
}
