//! A gallery of spot defects on the comparator layout: drop one defect of
//! every kind at a hand-picked location and print the circuit-level fault
//! the VLASIC-style extractor derives — a tour of the defect→fault rules.
//!
//! Run with: `cargo run --example defect_gallery`

use dotm::adc::comparator::ComparatorConfig;
use dotm::adc::layouts::{comparator_layout, LayoutConfig};
use dotm::defects::{Defect, DefectKind, DefectStatistics, Sprinkler};
use dotm::layout::Layer;
use dotm_rng::rngs::StdRng;
use dotm_rng::{Rng, SeedableRng};

fn main() {
    let layout = comparator_layout(ComparatorConfig::default(), LayoutConfig::default());
    let bbox = layout.bbox().unwrap();
    println!(
        "comparator layout: {} shapes, {} nets, {} transistors, {:.0} x {:.0} µm",
        layout.shape_count(),
        layout.net_count(),
        layout.transistors().len(),
        bbox.width() as f64 / 1e3,
        bbox.height() as f64 / 1e3
    );
    println!(
        "metal2 area {:.0} µm², poly area {:.0} µm², active area {:.0} µm²",
        layout.layer_area(Layer::Metal2) as f64 / 1e6,
        layout.layer_area(Layer::Poly) as f64 / 1e6,
        layout.layer_area(Layer::Active) as f64 / 1e6
    );
    println!();

    let sprinkler = Sprinkler::new(&layout, DefectStatistics::default());
    let mut rng = StdRng::seed_from_u64(2026);

    // For each defect kind, sample random spots until one causes a fault,
    // then show it.
    for kind in DefectKind::ALL {
        let mut shown = false;
        for _ in 0..300_000 {
            let mut d: Defect = sprinkler.sample_defect(&mut rng);
            d.kind = kind;
            // Bias pinhole-type defects toward plausible sizes.
            if matches!(
                kind,
                DefectKind::GateOxidePinhole
                    | DefectKind::JunctionPinhole
                    | DefectKind::ThickOxidePinhole
                    | DefectKind::ExtraContact
            ) {
                d.size = rng.gen_range(600..1_400);
            }
            if let Some(fault) = sprinkler.classify(&d) {
                println!(
                    "{:<22} at ({:>6.1}, {:>5.1}) µm, {:>4.1} µm  ->  {}",
                    kind.to_string(),
                    d.x as f64 / 1e3,
                    d.y as f64 / 1e3,
                    d.size as f64 / 1e3,
                    fault.canonical_key()
                );
                shown = true;
                break;
            }
        }
        if !shown {
            println!(
                "{:<22} (no fault found in 300k samples — rare by construction)",
                kind.to_string()
            );
        }
    }
    println!();
    println!("most sprinkled defects cause no fault at all; the rates above are why");
    println!("the paper needed 10,000,000 defects for statistically significant counts");
}
