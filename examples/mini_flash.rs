//! A transistor-level 3-bit flash converter slice: seven comparator
//! macros instantiated against a real resistor-ladder section, converted
//! by full transient simulation, and cross-checked against the
//! behavioural model used for fault propagation — the validation that
//! justifies the paper's divide-and-conquer.
//!
//! Run with: `cargo run --release --example mini_flash` (a few seconds).

use dotm::adc::column::FlashColumn;
use dotm::adc::comparator::{decision_sim_time, ComparatorConfig};
use dotm::sim::Simulator;

const N_STAGES: usize = 7; // 3-bit flash: 2³−1 comparators
const V_LO: f64 = 1.9;
const V_HI: f64 = 3.1;

fn convert(vin: f64) -> (usize, usize, usize) {
    let col = FlashColumn::build(ComparatorConfig::default(), N_STAGES, V_LO, V_HI, vin);
    let devices = col.netlist.device_count();
    let mut sim = Simulator::new(&col.netlist);
    let tr = sim
        .transient(decision_sim_time(), 0.5e-9)
        .expect("mini-flash transient");
    let therm = col.read_thermometer(&tr);
    let silicon = therm.iter().take_while(|&&t| t).count();
    (silicon, col.ideal_code(vin), devices)
}

fn main() {
    println!("3-bit transistor-level flash: {N_STAGES} comparator macros, ladder {V_LO}..{V_HI} V");
    println!();
    println!(
        "{:>8} {:>12} {:>12}",
        "vin (V)", "transistor", "behavioural"
    );
    let lsb = (V_HI - V_LO) / (N_STAGES + 1) as f64;
    let mut agree = true;
    let mut devices = 0;
    for code in 0..=N_STAGES {
        // Mid-bin input for each code.
        let vin = V_LO + (code as f64 + 0.5) * lsb;
        let (silicon, expected, d) = convert(vin);
        devices = d;
        let mark = if silicon == expected {
            ""
        } else {
            "  <-- MISMATCH"
        };
        agree &= silicon == expected;
        println!("{vin:>8.3} {silicon:>12} {expected:>12}{mark}");
    }
    println!();
    println!("({devices} devices per conversion testbench)");
    if agree {
        println!("transistor-level and behavioural conversions agree on every code —");
        println!("the macro decomposition's propagation models are faithful");
    } else {
        println!("MISMATCH between transistor-level and behavioural conversion!");
        std::process::exit(1);
    }
}
