//! Small-signal AC analysis of the comparator's amplifier stage — and how
//! a near-miss (500 Ω ∥ 1 fF) bridging defect reshapes the frequency
//! response. Sachdev's earlier defect-oriented work (which this paper
//! builds on) used exactly such "simple AC measurements" alongside DC and
//! transient ones.
//!
//! Run with: `cargo run --release --example ac_analysis`

use dotm::defects::{BridgeMedium, FaultEffect};
use dotm::faults::{Injector, Severity};
use dotm::netlist::{MosType, MosfetParams, Netlist, Waveform};
use dotm::sim::{log_sweep, Simulator};

/// The comparator's amplifier core as a standalone AC testbench: the
/// input pair biased at the auto-zero level, diode loads, bleed sources.
fn amplifier() -> Netlist {
    let mut nl = Netlist::new("amp");
    let gnd = Netlist::GROUND;
    let vdd = nl.node("vdd");
    let ga = nl.node("ga");
    let gb = nl.node("gb");
    let oa = nl.node("oa");
    let ob = nl.node("ob");
    let ntail = nl.node("ntail");
    nl.add_vsource("VDD", vdd, gnd, Waveform::dc(5.0)).unwrap();
    nl.add_vsource("VGA", ga, gnd, Waveform::dc(2.2)).unwrap();
    nl.add_vsource("VGB", gb, gnd, Waveform::dc(2.2)).unwrap();
    let vbn = nl.node("vbn");
    nl.add_vsource("VBN", vbn, gnd, Waveform::dc(1.05)).unwrap();
    let n = |w: f64, l: f64| MosfetParams::nmos_default().sized(w, l);
    let p = |w: f64, l: f64| MosfetParams::pmos_default().sized(w, l);
    nl.add_mosfet("M1", oa, ga, ntail, gnd, MosType::Nmos, n(20e-6, 1.6e-6))
        .unwrap();
    nl.add_mosfet("M2", ob, gb, ntail, gnd, MosType::Nmos, n(20e-6, 1.6e-6))
        .unwrap();
    nl.add_mosfet("M3", ntail, vbn, gnd, gnd, MosType::Nmos, n(10e-6, 2e-6))
        .unwrap();
    nl.add_mosfet("M4", oa, oa, vdd, vdd, MosType::Pmos, p(3e-6, 1.6e-6))
        .unwrap();
    nl.add_mosfet("M5", ob, ob, vdd, vdd, MosType::Pmos, p(3e-6, 1.6e-6))
        .unwrap();
    // The latch input loads the outputs.
    nl.add_capacitor("CLA", oa, gnd, 80e-15).unwrap();
    nl.add_capacitor("CLB", ob, gnd, 80e-15).unwrap();
    nl
}

fn response(nl: &Netlist) -> (Vec<f64>, Vec<f64>) {
    let mut sim = Simulator::new(nl);
    let op = sim.dc_op().expect("operating point");
    let freqs = log_sweep(1e4, 1e10, 4);
    let ac = sim.ac(&op, "VGA", &freqs).expect("ac sweep");
    let oa = nl.find_node("oa").unwrap();
    (freqs, ac.magnitude(oa))
}

fn main() {
    let good = amplifier();
    let (freqs, mag_good) = response(&good);

    // Near-miss bridge between the amplifier outputs: barely visible at
    // DC, but it collapses the differential gain.
    let injector = Injector::default();
    let mut faulty = good.clone();
    injector
        .inject(
            &mut faulty,
            &FaultEffect::Bridge {
                nets: vec!["oa".into(), "ob".into()],
                medium: BridgeMedium::Metal,
            },
            Severity::NonCatastrophic,
            0,
            "flt",
        )
        .unwrap();
    let (_, mag_fault) = response(&faulty);

    println!("single-ended gain |v(oa)/v(ga)| of the comparator amplifier stage");
    println!();
    println!(
        "{:>12} {:>14} {:>18}",
        "freq (Hz)", "fault-free (dB)", "oa-ob 500Ω bridge"
    );
    for (k, &f) in freqs.iter().enumerate() {
        if k % 4 == 0 {
            let db = |m: f64| 20.0 * m.max(1e-12).log10();
            println!(
                "{f:>12.2e} {:>14.1} {:>18.1}",
                db(mag_good[k]),
                db(mag_fault[k])
            );
        }
    }
    let db0_good = 20.0 * mag_good[0].log10();
    let db0_fault = 20.0 * mag_fault[0].log10();
    println!();
    println!(
        "low-frequency gain drops {:.1} dB under the near-miss bridge —",
        db0_good - db0_fault
    );
    println!("an AC measurement catches resistive defects that DC tests can miss");
}
