//! Fault simulation of the Flash ADC's comparator macro, end to end:
//! simulate the fault-free three-phase comparator, inject two classic
//! faults (a clock-line short and a gate-oxide pinhole), and watch the
//! voltage and current signatures appear.
//!
//! Run with: `cargo run --release --example comparator_fault_sim`

use dotm::adc::comparator::{
    comparator_testbench, decision_sim_time, read_decision, ComparatorConfig, ComparatorStimulus,
};
use dotm::adc::process::{Phase, CLOCK_PERIOD};
use dotm::defects::{BridgeMedium, FaultEffect};
use dotm::faults::{Injector, Severity};
use dotm::netlist::Netlist;
use dotm::sim::Simulator;

const DT: f64 = 0.25e-9;

/// Runs one decision at vin = vref + dv and the sampling-phase currents.
fn characterize(nl: &Netlist, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    print!("{label:<28}");
    for dv in [-0.02, 0.02] {
        let mut sim = Simulator::new(nl);
        sim.override_source("VIN", 2.5 + dv)?;
        match sim.transient(decision_sim_time(), DT) {
            Ok(tr) => {
                let d = read_decision(nl, &tr);
                let sym = if d > 2.0 {
                    "1"
                } else if d < -2.0 {
                    "0"
                } else {
                    "?"
                };
                print!(" dec({dv:+.2}V)={sym}");
            }
            Err(_) => print!(" dec({dv:+.2}V)=x"),
        }
    }
    // Quiescent currents at the end of the sampling phase.
    let mut sim = Simulator::new(nl);
    sim.override_source("VIN", 1.3)?;
    let tr = sim.transient(2.0 * CLOCK_PERIOD, DT)?;
    let k = tr.index_at(CLOCK_PERIOD + Phase::Sample.settle_time());
    let ivdd = tr
        .branch_current(k, nl.device_id("VDD").unwrap())
        .unwrap()
        .abs();
    let iddq = tr
        .branch_current(k, nl.device_id("VDDDIG").unwrap())
        .unwrap()
        .abs();
    println!("  IVdd={:7.1}µA  IDDQ={:9.3}µA", ivdd * 1e6, iddq * 1e6);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stim = ComparatorStimulus::dc_offset(2.5, 0.0);
    let good = comparator_testbench(ComparatorConfig::default(), &stim);
    println!(
        "comparator testbench: {} devices, {} nodes",
        good.device_count(),
        good.node_count()
    );
    println!();
    characterize(&good, "fault-free")?;

    let injector = Injector::default();

    // Fault 1: a metal bridge between two clock-distribution lines — the
    // canonical boundary-disturbing fault. Watch IDDQ jump.
    let mut f1 = good.clone();
    injector.inject(
        &mut f1,
        &FaultEffect::Bridge {
            nets: vec!["ck1".into(), "ck2".into()],
            medium: BridgeMedium::Metal,
        },
        Severity::Catastrophic,
        0,
        "f1",
    )?;
    characterize(&f1, "ck1-ck2 metal short")?;

    // Fault 2: a gate-oxide pinhole in the tail current source. The
    // injector offers three placements; the methodology keeps the worst.
    let effect = FaultEffect::GateOxide {
        device: "M3".into(),
    };
    for variant in 0..injector.variant_count(&effect) {
        let mut f2 = good.clone();
        injector.inject(&mut f2, &effect, Severity::Catastrophic, variant, "f2")?;
        characterize(
            &f2,
            &format!("M3 pinhole ({})", injector.variant_name(&effect, variant)),
        )?;
    }

    // Fault 3: the near-miss (non-catastrophic) version of the clock short.
    let mut f3 = good.clone();
    injector.inject(
        &mut f3,
        &FaultEffect::Bridge {
            nets: vec!["ck1".into(), "ck2".into()],
            medium: BridgeMedium::Metal,
        },
        Severity::NonCatastrophic,
        0,
        "f3",
    )?;
    characterize(&f3, "ck1-ck2 near-miss (500Ω)")?;

    println!();
    println!("legend: dec = flipflop decision for vin above/below the reference;");
    println!("        a healthy comparator shows dec(-0.02V)=0 dec(+0.02V)=1");
    Ok(())
}
